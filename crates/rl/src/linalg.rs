//! Minimal dense linear algebra for the DQN (no external ML dependencies,
//! matching the paper's weight-only hardware deployment story).

use adaptnoc_sim::json::Value;
use adaptnoc_sim::rng::Rng;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.random_f64_range(-bound, bound))
                .collect(),
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Serializes to a JSON object (`rows`, `cols`, row-major `data`).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("rows".into(), Value::Number(self.rows as f64)),
            ("cols".into(), Value::Number(self.cols as f64)),
            (
                "data".into(),
                Value::Array(self.data.iter().map(|&x| Value::Number(x)).collect()),
            ),
        ])
    }

    /// Restores a matrix from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let rows = v
            .get("rows")
            .and_then(Value::as_u64)
            .ok_or("matrix missing 'rows'")? as usize;
        let cols = v
            .get("cols")
            .and_then(Value::as_u64)
            .ok_or("matrix missing 'cols'")? as usize;
        let data: Vec<f64> = v
            .get("data")
            .and_then(Value::as_array)
            .ok_or("matrix missing 'data'")?
            .iter()
            .map(|x| x.as_f64().ok_or("matrix data not numeric".to_string()))
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(format!(
                "matrix data length {} != {rows}x{cols}",
                data.len()
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }

    /// `y = W x` (x of length `cols`, result of length `rows`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(w, v)| w * v).sum();
        }
        y
    }

    /// `y = W^T x` (x of length `rows`, result of length `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter().enumerate() {
                y[c] += w * x[r];
            }
        }
        y
    }

    /// `W += scale * (a ⊗ b)` (rank-1 update; a of length `rows`, b of
    /// length `cols`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[allow(clippy::needless_range_loop)]
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "outer rows mismatch");
        assert_eq!(b.len(), self.cols, "outer cols mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter_mut().enumerate() {
                *w += scale * a[r] * b[c];
            }
        }
    }

    /// Elementwise `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Rectified linear unit applied elementwise.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Derivative mask of ReLU at the pre-activation values.
pub fn relu_grad(pre: &[f64]) -> Vec<f64> {
    pre.iter()
        .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
        .collect()
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known_values() {
        let mut m = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.data[i] = *v;
        }
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0 / 30.0f64).sqrt();
        for r in 0..10 {
            for c in 0..20 {
                assert!(m.get(r, c).abs() <= bound);
            }
        }
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
        assert_eq!(relu_grad(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_shape_checked() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}

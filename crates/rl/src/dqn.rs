//! The deep Q-network agent (Sec. III-E).
//!
//! Prediction + target networks, a 1000-entry experience replay buffer,
//! minibatch size 100, target sync every 168 iterations, learning rate
//! 1e-4, discount 0.9, ε-greedy 0.05 — all per the paper. Training is
//! offline; deployment stores only the prediction network's weights.

use crate::linalg::argmax;
use crate::mlp::{Gradients, Mlp};
use adaptnoc_sim::json::{self, Value};
use adaptnoc_sim::rng::Rng;
use std::sync::Arc;

/// One experience-replay transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State at decision time.
    pub state: Vec<f64>,
    /// Action taken.
    pub action: usize,
    /// Observed reward.
    pub reward: f64,
    /// Next state.
    pub next_state: Vec<f64>,
}

/// Hyper-parameters, defaulting to the paper's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqnConfig {
    /// State dimension (12).
    pub state_dim: usize,
    /// Number of actions (4 topologies).
    pub actions: usize,
    /// Hidden layer width (15, two layers).
    pub hidden: usize,
    /// Neural-network learning rate (1e-4, Sec. III-E).
    pub learning_rate: f64,
    /// Discount factor γ (0.9, Sec. IV-A).
    pub gamma: f64,
    /// Exploration rate ε (0.05, Sec. IV-A).
    pub epsilon: f64,
    /// Replay buffer capacity (1000 entries).
    pub replay_capacity: usize,
    /// Minibatch size (100).
    pub minibatch: usize,
    /// Target-network sync period in training iterations (168).
    pub target_sync: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            state_dim: crate::state::STATE_DIM,
            actions: 4,
            hidden: 15,
            learning_rate: 1e-4,
            gamma: 0.9,
            epsilon: 0.05,
            replay_capacity: 1000,
            minibatch: 100,
            target_sync: 168,
        }
    }
}

/// The experience replay ring buffer.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    buf: Vec<Transition>,
    capacity: usize,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer of the given capacity.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Inserts a transition, overwriting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity.max(1);
    }

    /// Samples `n` transitions uniformly with replacement.
    pub fn sample<'a>(&'a self, n: usize, rng: &mut Rng) -> Vec<&'a Transition> {
        (0..n)
            .map(|_| &self.buf[rng.random_below(self.buf.len())])
            .collect()
    }
}

/// The DQN agent.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    /// Hyper-parameters.
    pub cfg: DqnConfig,
    prediction: Mlp,
    target: Mlp,
    replay: ReplayBuffer,
    iterations: u64,
    rng: Rng,
}

impl DqnAgent {
    /// Creates an agent with freshly initialized networks.
    pub fn new(cfg: DqnConfig, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let shape = [cfg.state_dim, cfg.hidden, cfg.hidden, cfg.actions];
        let prediction = Mlp::new(&shape, &mut rng);
        let mut target = Mlp::new(&shape, &mut rng);
        target.copy_from(&prediction);
        DqnAgent {
            replay: ReplayBuffer::new(cfg.replay_capacity),
            cfg,
            prediction,
            target,
            iterations: 0,
            rng,
        }
    }

    /// Q-values of the prediction network.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.prediction.forward(state)
    }

    /// ε-greedy action selection. With `explore` false (pure deployment
    /// evaluation) the greedy action is always taken.
    pub fn select_action(&mut self, state: &[f64], explore: bool) -> usize {
        if explore && self.rng.random_f64() < self.cfg.epsilon {
            self.rng.random_below(self.cfg.actions)
        } else {
            argmax(&self.prediction.forward(state))
        }
    }

    /// Stores a transition in the replay buffer.
    pub fn observe(&mut self, t: Transition) {
        self.replay.push(t);
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// One training iteration: sample a minibatch, regress the prediction
    /// network towards the TD targets computed with the target network,
    /// and periodically sync the target network. Returns the mean loss, or
    /// `None` if the buffer holds fewer than a minibatch of samples.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.replay.len() < self.cfg.minibatch {
            return None;
        }
        let n = self.cfg.minibatch;
        let idxs: Vec<usize> = (0..n)
            .map(|_| self.rng.random_below(self.replay.len()))
            .collect();
        let mut acc = Gradients::zeros_like(&self.prediction);
        let mut loss_sum = 0.0;
        for &i in &idxs {
            let t = self.replay.buf[i].clone();
            let next_q = self.target.forward(&t.next_state);
            let max_next = next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let td_target = t.reward + self.cfg.gamma * max_next;
            let mut target_vec = vec![0.0; self.cfg.actions];
            let mut mask = vec![0.0; self.cfg.actions];
            target_vec[t.action] = td_target;
            mask[t.action] = 1.0;
            let (g, l) = self.prediction.backprop(&t.state, &target_vec, &mask);
            acc.accumulate(&g, 1.0 / n as f64);
            loss_sum += l;
        }
        self.prediction.apply(&acc, self.cfg.learning_rate);
        self.iterations += 1;
        if self.iterations.is_multiple_of(self.cfg.target_sync) {
            self.target.copy_from(&self.prediction);
        }
        Some(loss_sum / n as f64)
    }

    /// Training iterations performed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Extracts the trained prediction network (weight-only deployment).
    pub fn into_policy(self) -> TrainedPolicy {
        TrainedPolicy {
            net: Arc::new(self.prediction),
            epsilon: self.cfg.epsilon,
            actions: self.cfg.actions,
        }
    }

    /// Borrows the prediction network.
    pub fn network(&self) -> &Mlp {
        &self.prediction
    }
}

/// A deployed policy: just the trained network plus ε-greedy exploration,
/// matching the paper's hardware (weights only, no replay or target net).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedPolicy {
    /// The deployed network, shared: each region controller holds a clone
    /// of the policy, and an `Arc` makes those clones O(1) instead of
    /// copying the full weight matrices.
    net: Arc<Mlp>,
    epsilon: f64,
    actions: usize,
}

impl TrainedPolicy {
    /// Greedy action with ε exploration using the caller's RNG.
    pub fn decide(&self, state: &[f64], rng: &mut Rng) -> usize {
        if rng.random_f64() < self.epsilon {
            rng.random_below(self.actions)
        } else {
            argmax(&self.net.forward(state))
        }
    }

    /// Pure-greedy action (no exploration).
    pub fn decide_greedy(&self, state: &[f64]) -> usize {
        argmax(&self.net.forward(state))
    }

    /// Q-values of the deployed network.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.net.forward(state)
    }

    /// Overrides the exploration rate (used by the Fig. 19 sweep).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Serializes the policy (the weight-only artifact the paper stores in
    /// hardware) to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a message on serialization failure.
    pub fn to_json(&self) -> Result<String, String> {
        Ok(Value::Object(vec![
            ("net".into(), self.net.to_json()),
            ("epsilon".into(), Value::Number(self.epsilon)),
            ("actions".into(), Value::Number(self.actions as f64)),
        ])
        .to_string_compact())
    }

    /// Restores a policy from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s).map_err(|e| e.to_string())?;
        Ok(TrainedPolicy {
            net: Arc::new(Mlp::from_json(v.get("net").ok_or("policy missing 'net'")?)?),
            epsilon: v
                .get("epsilon")
                .and_then(Value::as_f64)
                .ok_or("policy missing 'epsilon'")?,
            actions: v
                .get("actions")
                .and_then(Value::as_u64)
                .ok_or("policy missing 'actions'")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = DqnConfig::default();
        assert_eq!(c.state_dim, 12);
        assert_eq!(c.actions, 4);
        assert_eq!(c.hidden, 15);
        assert_eq!(c.learning_rate, 1e-4);
        assert_eq!(c.gamma, 0.9);
        assert_eq!(c.epsilon, 0.05);
        assert_eq!(c.replay_capacity, 1000);
        assert_eq!(c.minibatch, 100);
        assert_eq!(c.target_sync, 168);
    }

    #[test]
    fn replay_buffer_wraps_at_capacity() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..5 {
            rb.push(Transition {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: vec![],
            });
        }
        assert_eq!(rb.len(), 3);
        let states: Vec<f64> = rb.buf.iter().map(|t| t.state[0]).collect();
        // Oldest (0 and 1) overwritten by 3 and 4.
        assert!(states.contains(&2.0));
        assert!(states.contains(&3.0));
        assert!(states.contains(&4.0));
    }

    #[test]
    fn no_training_below_minibatch() {
        let mut agent = DqnAgent::new(DqnConfig::default(), 1);
        for _ in 0..50 {
            agent.observe(Transition {
                state: vec![0.0; 12],
                action: 0,
                reward: 1.0,
                next_state: vec![0.0; 12],
            });
        }
        assert!(agent.train_step().is_none());
    }

    /// A contextual bandit: state bit i says which action pays off.
    /// The DQN must learn the mapping.
    #[test]
    fn dqn_learns_contextual_bandit() {
        let cfg = DqnConfig {
            state_dim: 4,
            actions: 4,
            hidden: 12,
            learning_rate: 5e-2,
            gamma: 0.0, // bandit: no future
            minibatch: 32,
            replay_capacity: 512,
            target_sync: 20,
            epsilon: 0.1,
        };
        let mut agent = DqnAgent::new(cfg, 7);
        let mut rng = Rng::seed_from_u64(99);
        // Generate experience.
        for _ in 0..600 {
            let ctx = rng.random_below(4);
            let mut state = vec![0.0; 4];
            state[ctx] = 1.0;
            let action = rng.random_below(4);
            let reward = if action == ctx { 1.0 } else { -1.0 };
            agent.observe(Transition {
                state: state.clone(),
                action,
                reward,
                next_state: state,
            });
        }
        for _ in 0..800 {
            agent.train_step().unwrap();
        }
        // The greedy policy must pick the context's action.
        for ctx in 0..4 {
            let mut state = vec![0.0; 4];
            state[ctx] = 1.0;
            let a = agent.select_action(&state, false);
            assert_eq!(a, ctx, "q-values {:?}", agent.q_values(&state));
        }
    }

    #[test]
    fn target_network_sync_period() {
        let cfg = DqnConfig {
            state_dim: 2,
            actions: 2,
            hidden: 4,
            minibatch: 4,
            target_sync: 3,
            ..Default::default()
        };
        let mut agent = DqnAgent::new(cfg, 3);
        for i in 0..10 {
            agent.observe(Transition {
                state: vec![i as f64 / 10.0, 0.0],
                action: i % 2,
                reward: 1.0,
                next_state: vec![0.0, 0.0],
            });
        }
        for _ in 0..6 {
            agent.train_step().unwrap();
        }
        assert_eq!(agent.iterations(), 6);
    }

    #[test]
    fn trained_policy_greedy_matches_agent() {
        let mut agent = DqnAgent::new(DqnConfig::default(), 11);
        let state = vec![0.3; 12];
        let greedy = agent.select_action(&state, false);
        let policy = agent.clone().into_policy();
        assert_eq!(policy.decide_greedy(&state), greedy);
        assert_eq!(policy.q_values(&state), agent.q_values(&state));
    }

    #[test]
    fn policy_json_roundtrip() {
        let agent = DqnAgent::new(DqnConfig::default(), 21);
        let policy = agent.into_policy();
        let json = policy.to_json().unwrap();
        let restored = TrainedPolicy::from_json(&json).unwrap();
        let state = vec![0.3; 12];
        // JSON float printing is shortest-roundtrip, so Q-values agree to
        // within an ulp or two.
        for (a, b) in policy
            .q_values(&state)
            .iter()
            .zip(restored.q_values(&state))
        {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(policy.decide_greedy(&state), restored.decide_greedy(&state));
        assert!(TrainedPolicy::from_json("not json").is_err());
    }

    #[test]
    fn exploration_rate_shapes_decisions() {
        let agent = DqnAgent::new(DqnConfig::default(), 5);
        let policy = agent.into_policy().with_epsilon(1.0);
        let mut rng = Rng::seed_from_u64(0);
        let state = vec![0.5; 12];
        let greedy = policy.decide_greedy(&state);
        let picks: Vec<usize> = (0..100).map(|_| policy.decide(&state, &mut rng)).collect();
        // With epsilon=1 every action appears.
        for a in 0..4 {
            assert!(picks.contains(&a));
        }
        // With epsilon=0 only the greedy action appears.
        let policy0 = policy.with_epsilon(0.0);
        assert!((0..100).all(|_| policy0.decide(&state, &mut rng) == greedy));
    }
}

//! The RL state vector: the 12 attributes of Table I, normalized into the unit interval.

/// Raw (unnormalized) observation of one subNoC over an epoch, matching
/// Table I of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Observation {
    // Instruction and cache related metrics.
    /// Number of L1D cache misses.
    pub l1d_misses: f64,
    /// Number of L1I cache misses.
    pub l1i_misses: f64,
    /// Number of L2 cache misses.
    pub l2_misses: f64,
    /// Number of retired instructions.
    pub retired_instructions: f64,
    // Network related metrics.
    /// Number of coherence packets.
    pub coherence_packets: f64,
    /// Number of data packets.
    pub data_packets: f64,
    /// Average router buffer utilization in `[0,1]`.
    pub buffer_utilization: f64,
    /// Average injection-port (NI source queue) utilization.
    pub injection_utilization: f64,
    // Topology related metrics.
    /// Average router throughput (flits forwarded per router per cycle).
    pub router_throughput: f64,
    /// Current topology (action index 0..4).
    pub current_topology: f64,
    /// Column size of the subNoC.
    pub columns: f64,
    /// Row size of the subNoC.
    pub rows: f64,
}

/// The number of state attributes (the DQN input width).
pub const STATE_DIM: usize = 12;

/// Normalization scales: per-attribute maxima used to map raw observations
/// into (0,1) "due to the linear region of the activation function"
/// (Sec. III-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateScales {
    /// Maximum expected cache-miss/instruction counts per epoch.
    pub max_events: f64,
    /// Maximum expected packets per epoch.
    pub max_packets: f64,
    /// Maximum router throughput (flits/router/cycle).
    pub max_throughput: f64,
    /// Number of topology actions.
    pub num_topologies: f64,
    /// Maximum subNoC dimension.
    pub max_dim: f64,
}

impl Default for StateScales {
    fn default() -> Self {
        // Calibrated for 50K-cycle epochs on an 8x8 chip.
        StateScales {
            max_events: 100_000.0,
            max_packets: 50_000.0,
            max_throughput: 2.0,
            num_topologies: 4.0,
            max_dim: 8.0,
        }
    }
}

impl Observation {
    /// Normalizes into the 12-element (0,1) state vector.
    pub fn normalize(&self, s: &StateScales) -> [f64; STATE_DIM] {
        let clamp = |v: f64| v.clamp(0.0, 1.0);
        [
            clamp(self.l1d_misses / s.max_events),
            clamp(self.l1i_misses / s.max_events),
            clamp(self.l2_misses / s.max_events),
            clamp(self.retired_instructions / (s.max_events * 10.0)),
            clamp(self.coherence_packets / s.max_packets),
            clamp(self.data_packets / s.max_packets),
            clamp(self.buffer_utilization),
            clamp(self.injection_utilization),
            clamp(self.router_throughput / s.max_throughput),
            clamp(self.current_topology / (s.num_topologies - 1.0)),
            clamp(self.columns / s.max_dim),
            clamp(self.rows / s.max_dim),
        ]
    }
}

/// Reward of Eq. 2: `-power x (T_network + T_queuing)`.
///
/// `power_w` is the subNoC's average power in watts; latencies are the
/// epoch's mean packet latencies in cycles.
pub fn reward(power_w: f64, network_latency: f64, queuing_latency: f64) -> f64 {
    -power_w * (network_latency + queuing_latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_state_in_unit_interval() {
        let obs = Observation {
            l1d_misses: 1e9, // overflow is clamped
            l1i_misses: 50.0,
            l2_misses: 1000.0,
            retired_instructions: 5e5,
            coherence_packets: 100.0,
            data_packets: 60_000.0,
            buffer_utilization: 0.4,
            injection_utilization: 1.7,
            router_throughput: 0.8,
            current_topology: 3.0,
            columns: 8.0,
            rows: 2.0,
        };
        let v = obs.normalize(&StateScales::default());
        assert_eq!(v.len(), STATE_DIM);
        for x in v {
            assert!((0.0..=1.0).contains(&x), "{x} out of range");
        }
        assert_eq!(v[0], 1.0); // clamped
        assert_eq!(v[9], 1.0); // topology 3 of 4
    }

    #[test]
    fn distinct_observations_yield_distinct_states() {
        let a = Observation {
            data_packets: 1000.0,
            ..Default::default()
        };
        let mut b = a;
        b.data_packets = 2000.0;
        let s = StateScales::default();
        assert_ne!(a.normalize(&s), b.normalize(&s));
    }

    #[test]
    fn reward_prefers_low_power_and_latency() {
        // Better (lower) power and latency => larger (less negative) reward.
        assert!(reward(1.0, 20.0, 10.0) < reward(1.0, 15.0, 5.0));
        assert!(reward(2.0, 20.0, 10.0) < reward(1.0, 20.0, 10.0));
        assert_eq!(reward(0.0, 100.0, 100.0), 0.0);
    }
}

//! # adaptnoc-rl
//!
//! The reinforcement-learning control stack of the Adapt-NoC reproduction
//! (paper Sec. III), built from scratch:
//!
//! * [`linalg`] / [`mlp`] — a small dense-matrix library and a
//!   feed-forward network with manual backprop (the paper's 12-15-15-4
//!   ReLU DQN).
//! * [`dqn`] — the deep-Q agent: prediction + target networks, 1000-entry
//!   experience replay, minibatch 100, target sync every 168 iterations,
//!   α=0.1/γ=0.9/ε=0.05 control hyper-parameters, and a weight-only
//!   [`dqn::TrainedPolicy`] for deployment.
//! * [`qtable`] — tabular Q-learning (Eq. 1) as the ablation comparator.
//! * [`state`] — the 12 Table-I state attributes with (0,1) normalization
//!   and the Eq. 2 reward.
//!
//! ```
//! use adaptnoc_rl::prelude::*;
//!
//! let mut agent = DqnAgent::new(DqnConfig::default(), 42);
//! let state = vec![0.5; STATE_DIM];
//! let action = agent.select_action(&state, true);
//! assert!(action < 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dqn;
pub mod linalg;
pub mod mlp;
pub mod qtable;
pub mod state;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::dqn::{DqnAgent, DqnConfig, ReplayBuffer, TrainedPolicy, Transition};
    pub use crate::linalg::argmax;
    pub use crate::mlp::Mlp;
    pub use crate::qtable::QTableAgent;
    pub use crate::state::{reward, Observation, StateScales, STATE_DIM};
}

//! Feed-forward neural network with manual backpropagation.
//!
//! The paper's DQN (Sec. III-E): one input layer (12 neurons, the Table-I
//! state vector), two ReLU hidden layers of 15 neurons, and a linear output
//! layer of 4 Q-values; trained with minibatch gradient descent at learning
//! rate 1e-4.

use crate::linalg::{relu, relu_grad, Matrix};
use adaptnoc_sim::json::Value;
use adaptnoc_sim::rng::Rng;

/// One dense layer.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
}

/// A multi-layer perceptron with ReLU hidden activations and a linear
/// output layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    shape: Vec<usize>,
}

/// Per-layer gradients produced by backprop.
#[derive(Debug, Clone)]
pub struct Gradients {
    dw: Vec<Matrix>,
    db: Vec<Vec<f64>>,
}

impl Gradients {
    /// Zero gradients matching `mlp`'s shape.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Gradients {
            dw: mlp
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            db: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Accumulates `other` scaled by `scale`.
    pub fn accumulate(&mut self, other: &Gradients, scale: f64) {
        for (a, b) in self.dw.iter_mut().zip(&other.dw) {
            a.add_scaled(b, scale);
        }
        for (a, b) in self.db.iter_mut().zip(&other.db) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += scale * y;
            }
        }
    }
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (first = input dimension,
    /// last = output dimension), Xavier-initialized.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(shape: &[usize], rng: &mut Rng) -> Self {
        assert!(shape.len() >= 2, "an MLP needs at least input and output");
        let layers = shape
            .windows(2)
            .map(|w| Dense {
                w: Matrix::xavier(w[1], w[0], rng),
                b: vec![0.0; w[1]],
            })
            .collect();
        Mlp {
            layers,
            shape: shape.to_vec(),
        }
    }

    /// The paper's DQN shape: 12-15-15-4.
    pub fn paper_dqn(rng: &mut Rng) -> Self {
        Mlp::new(&[12, 15, 15, 4], rng)
    }

    /// Layer sizes.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.shape[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.shape.last().unwrap()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut a = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, l) in self.layers.iter().enumerate() {
            let mut z = l.w.matvec(&a);
            for (zi, bi) in z.iter_mut().zip(&l.b) {
                *zi += bi;
            }
            a = if i == last { z } else { relu(&z) };
        }
        a
    }

    /// Forward + backward pass for a squared-error loss on selected output
    /// components: `loss = 0.5 * sum_i mask_i * (y_i - target_i)^2`.
    /// Returns the gradients and the loss value.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backprop(&self, x: &[f64], target: &[f64], mask: &[f64]) -> (Gradients, f64) {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(target.len(), self.output_dim(), "target dimension mismatch");
        assert_eq!(mask.len(), self.output_dim(), "mask dimension mismatch");

        // Forward, caching pre-activations and activations.
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut pres: Vec<Vec<f64>> = Vec::new();
        let last = self.layers.len() - 1;
        for (i, l) in self.layers.iter().enumerate() {
            let mut z = l.w.matvec(acts.last().unwrap());
            for (zi, bi) in z.iter_mut().zip(&l.b) {
                *zi += bi;
            }
            pres.push(z.clone());
            acts.push(if i == last { z } else { relu(&z) });
        }
        let y = acts.last().unwrap();
        let mut loss = 0.0;
        let mut delta: Vec<f64> = y
            .iter()
            .zip(target)
            .zip(mask)
            .map(|((yi, ti), mi)| {
                let e = (yi - ti) * mi;
                loss += 0.5 * e * (yi - ti);
                e
            })
            .collect();

        let mut grads = Gradients::zeros_like(self);
        for i in (0..self.layers.len()).rev() {
            // delta is dLoss/dz_i.
            grads.dw[i].add_outer(&delta, &acts[i], 1.0);
            for (g, d) in grads.db[i].iter_mut().zip(&delta) {
                *g += d;
            }
            if i > 0 {
                let upstream = self.layers[i].w.matvec_t(&delta);
                let mask = relu_grad(&pres[i - 1]);
                delta = upstream.iter().zip(&mask).map(|(u, m)| u * m).collect();
            }
        }
        (grads, loss)
    }

    /// Applies a gradient step: `params -= lr * grads`.
    pub fn apply(&mut self, grads: &Gradients, lr: f64) {
        for (l, (dw, db)) in self.layers.iter_mut().zip(grads.dw.iter().zip(&grads.db)) {
            l.w.add_scaled(dw, -lr);
            for (b, g) in l.b.iter_mut().zip(db) {
                *b -= lr * g;
            }
        }
    }

    /// Copies parameters from another network of the same shape (target
    /// network sync).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &Mlp) {
        assert_eq!(self.shape, other.shape, "MLP shape mismatch");
        self.layers = other.layers.clone();
    }

    /// Total number of parameters (weights + biases) — the hardware storage
    /// the paper's weight-only deployment needs.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Serializes the network (shape + per-layer weights and biases) to a
    /// JSON object.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "shape".into(),
                Value::Array(
                    self.shape
                        .iter()
                        .map(|&s| Value::Number(s as f64))
                        .collect(),
                ),
            ),
            (
                "layers".into(),
                Value::Array(
                    self.layers
                        .iter()
                        .map(|l| {
                            Value::Object(vec![
                                ("w".into(), l.w.to_json()),
                                (
                                    "b".into(),
                                    Value::Array(l.b.iter().map(|&x| Value::Number(x)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores a network from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let shape: Vec<usize> = v
            .get("shape")
            .and_then(Value::as_array)
            .ok_or("mlp missing 'shape'")?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|n| n as usize)
                    .ok_or("bad shape entry".to_string())
            })
            .collect::<Result<_, _>>()?;
        if shape.len() < 2 {
            return Err("mlp shape needs at least two sizes".into());
        }
        let layers_json = v
            .get("layers")
            .and_then(Value::as_array)
            .ok_or("mlp missing 'layers'")?;
        if layers_json.len() != shape.len() - 1 {
            return Err("mlp layer count does not match shape".into());
        }
        let mut layers = Vec::with_capacity(layers_json.len());
        for (i, lj) in layers_json.iter().enumerate() {
            let w = Matrix::from_json(lj.get("w").ok_or("layer missing 'w'")?)?;
            let b: Vec<f64> = lj
                .get("b")
                .and_then(Value::as_array)
                .ok_or("layer missing 'b'")?
                .iter()
                .map(|x| x.as_f64().ok_or("bad bias entry".to_string()))
                .collect::<Result<_, _>>()?;
            if w.rows() != shape[i + 1] || w.cols() != shape[i] || b.len() != shape[i + 1] {
                return Err(format!("layer {i} dimensions do not match shape"));
            }
            layers.push(Dense { w, b });
        }
        Ok(Mlp { layers, shape })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn paper_dqn_shape() {
        let m = Mlp::paper_dqn(&mut rng());
        assert_eq!(m.shape(), &[12, 15, 15, 4]);
        assert_eq!(m.input_dim(), 12);
        assert_eq!(m.output_dim(), 4);
        // 12*15+15 + 15*15+15 + 15*4+4 = 499 parameters.
        assert_eq!(m.param_count(), 499);
    }

    #[test]
    fn forward_is_deterministic() {
        let m = Mlp::paper_dqn(&mut rng());
        let x = vec![0.5; 12];
        assert_eq!(m.forward(&x), m.forward(&x));
    }

    #[test]
    fn gradient_check_against_numerical() {
        let mut r = rng();
        let mut m = Mlp::new(&[3, 5, 2], &mut r);
        let x = [0.3, -0.7, 0.9];
        let target = [1.0, -0.5];
        let mask = [1.0, 1.0];
        let (grads, _) = m.backprop(&x, &target, &mask);

        let eps = 1e-6;
        let loss_of = |m: &Mlp| -> f64 {
            let y = m.forward(&x);
            0.5 * y
                .iter()
                .zip(&target)
                .map(|(yi, ti)| (yi - ti) * (yi - ti))
                .sum::<f64>()
        };
        // Check a sample of weight gradients in every layer.
        for li in 0..2 {
            for (r_, c) in [(0, 0), (1, 1)] {
                let orig = m.layers[li].w.get(r_, c);
                *m.layers[li].w.get_mut(r_, c) = orig + eps;
                let lp = loss_of(&m);
                *m.layers[li].w.get_mut(r_, c) = orig - eps;
                let lm = loss_of(&m);
                *m.layers[li].w.get_mut(r_, c) = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = grads.dw[li].get(r_, c);
                assert!(
                    (num - ana).abs() < 1e-5,
                    "layer {li} w[{r_}][{c}]: numerical {num} vs analytic {ana}"
                );
            }
            // Bias gradient check.
            let orig = m.layers[li].b[0];
            m.layers[li].b[0] = orig + eps;
            let lp = loss_of(&m);
            m.layers[li].b[0] = orig - eps;
            let lm = loss_of(&m);
            m.layers[li].b[0] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grads.db[li][0]).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_backprop_ignores_unselected_outputs() {
        let mut r = rng();
        let m = Mlp::new(&[2, 4, 3], &mut r);
        let x = [0.1, 0.9];
        // Only output 1 contributes.
        let (g1, _) = m.backprop(&x, &[9.0, 1.0, 9.0], &[0.0, 1.0, 0.0]);
        let (g2, _) = m.backprop(&x, &[5.0, 1.0, -5.0], &[0.0, 1.0, 0.0]);
        for li in 0..2 {
            assert!((g1.dw[li].norm() - g2.dw[li].norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn training_reduces_loss_on_regression() {
        let mut r = rng();
        let mut m = Mlp::new(&[2, 8, 1], &mut r);
        // Learn f(x) = x0 + 2*x1.
        let data: Vec<([f64; 2], f64)> = (0..50)
            .map(|i| {
                let a = (i % 10) as f64 / 10.0;
                let b = (i / 10) as f64 / 5.0;
                ([a, b], a + 2.0 * b)
            })
            .collect();
        let loss_total = |m: &Mlp| -> f64 {
            data.iter()
                .map(|(x, t)| {
                    let y = m.forward(x)[0];
                    0.5 * (y - t) * (y - t)
                })
                .sum()
        };
        let before = loss_total(&m);
        for _ in 0..600 {
            let mut acc = Gradients::zeros_like(&m);
            for (x, t) in &data {
                let (g, _) = m.backprop(x, &[*t], &[1.0]);
                acc.accumulate(&g, 1.0 / data.len() as f64);
            }
            m.apply(&acc, 0.1);
        }
        let after = loss_total(&m);
        assert!(
            after < before * 0.05,
            "loss did not drop enough: {before} -> {after}"
        );
    }

    #[test]
    fn copy_from_syncs_outputs() {
        let mut r = rng();
        let a = Mlp::paper_dqn(&mut r);
        let mut b = Mlp::paper_dqn(&mut r);
        let x = vec![0.2; 12];
        assert_ne!(a.forward(&x), b.forward(&x));
        b.copy_from(&a);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_from_checks_shape() {
        let mut r = rng();
        let a = Mlp::new(&[2, 3], &mut r);
        let mut b = Mlp::new(&[2, 4], &mut r);
        b.copy_from(&a);
    }
}

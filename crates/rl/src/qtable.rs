//! Tabular Q-learning (Sec. III-A, Eq. 1) with state discretization.
//!
//! The paper motivates the DQN by the Q-table's exponential state space;
//! this implementation serves as the ablation comparator: it discretizes
//! each normalized state attribute into a few bins and applies
//! `Q(s,a) += α [r + γ max_a' Q(s',a') − Q(s,a)]`.

use adaptnoc_sim::rng::Rng;
use std::collections::HashMap;

/// Tabular Q-learning agent.
#[derive(Debug, Clone)]
pub struct QTableAgent {
    /// Learning rate α (0.1, Sec. IV-A).
    pub alpha: f64,
    /// Discount factor γ (0.9).
    pub gamma: f64,
    /// Exploration rate ε (0.05).
    pub epsilon: f64,
    bins: usize,
    actions: usize,
    table: HashMap<Vec<u8>, Vec<f64>>,
    rng: Rng,
}

impl QTableAgent {
    /// Creates an agent with the paper's hyper-parameters (`α=0.1`,
    /// `γ=0.9`, `ε=0.05`) and the given per-attribute bin count.
    pub fn new(actions: usize, bins: usize, seed: u64) -> Self {
        QTableAgent {
            alpha: 0.1,
            gamma: 0.9,
            epsilon: 0.05,
            bins,
            actions,
            table: HashMap::new(),
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Discretizes a normalized (0,1) state vector.
    pub fn discretize(&self, state: &[f64]) -> Vec<u8> {
        state
            .iter()
            .map(|&v| {
                let b = (v.clamp(0.0, 1.0) * self.bins as f64) as usize;
                b.min(self.bins - 1) as u8
            })
            .collect()
    }

    /// The Q-row for a discretized state (zeros if unvisited).
    pub fn q_row(&self, key: &[u8]) -> Vec<f64> {
        self.table
            .get(key)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.actions])
    }

    /// ε-greedy action selection.
    pub fn select_action(&mut self, state: &[f64], explore: bool) -> usize {
        if explore && self.rng.random_f64() < self.epsilon {
            return self.rng.random_below(self.actions);
        }
        let key = self.discretize(state);
        let row = self.q_row(&key);
        crate::linalg::argmax(&row)
    }

    /// Applies the Q-learning update (Eq. 1).
    pub fn update(&mut self, state: &[f64], action: usize, reward: f64, next_state: &[f64]) {
        let key = self.discretize(state);
        let next_key = self.discretize(next_state);
        let max_next = self
            .q_row(&next_key)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        let row = self
            .table
            .entry(key)
            .or_insert_with(|| vec![0.0; self.actions]);
        let q = row[action];
        row[action] = q + self.alpha * (reward + self.gamma * max_next - q);
    }

    /// Number of distinct states visited — the hardware-cost argument for
    /// the DQN (Sec. III-A).
    pub fn table_size(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretization_bins_and_clamps() {
        let a = QTableAgent::new(4, 4, 0);
        assert_eq!(
            a.discretize(&[0.0, 0.24, 0.26, 0.99, 1.0, 7.0]),
            vec![0, 0, 1, 3, 3, 3]
        );
    }

    #[test]
    fn update_moves_q_toward_target() {
        let mut a = QTableAgent::new(2, 4, 0);
        let s = [0.1, 0.1];
        let s2 = [0.9, 0.9];
        a.update(&s, 1, 10.0, &s2);
        let q = a.q_row(&a.discretize(&s));
        // One step: Q = 0 + 0.1 * (10 + 0.9*0 - 0) = 1.0.
        assert!((q[1] - 1.0).abs() < 1e-12);
        assert_eq!(q[0], 0.0);
    }

    #[test]
    fn learns_deterministic_bandit() {
        let mut a = QTableAgent::new(3, 2, 1);
        let s = [0.5];
        for _ in 0..200 {
            for action in 0..3 {
                let r = if action == 2 { 5.0 } else { 0.0 };
                a.update(&s, action, r, &s);
            }
        }
        assert_eq!(a.select_action(&s, false), 2);
    }

    #[test]
    fn learns_two_state_contextual_choice() {
        let mut a = QTableAgent::new(2, 2, 2);
        let low = [0.1];
        let high = [0.9];
        for _ in 0..300 {
            a.update(&low, 0, 1.0, &low);
            a.update(&low, 1, -1.0, &low);
            a.update(&high, 0, -1.0, &high);
            a.update(&high, 1, 1.0, &high);
        }
        assert_eq!(a.select_action(&low, false), 0);
        assert_eq!(a.select_action(&high, false), 1);
        assert_eq!(a.table_size(), 2);
    }

    #[test]
    fn table_growth_tracks_distinct_states() {
        let mut a = QTableAgent::new(2, 4, 3);
        for i in 0..16 {
            let s = [i as f64 / 16.0, (15 - i) as f64 / 16.0];
            a.update(&s, 0, 0.0, &s);
        }
        // 16 raw states collapse into at most 4x4 bins.
        assert!(a.table_size() <= 16);
        assert!(a.table_size() >= 4);
    }
}

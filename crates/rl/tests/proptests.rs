//! Randomized tests for the RL stack: numerical stability of the MLP,
//! consistency of Q-learning updates, and agent robustness to arbitrary
//! (normalized) inputs. Cases come from the in-tree seeded PRNG.

use adaptnoc_rl::prelude::*;
use adaptnoc_sim::rng::Rng;

fn random_state(rng: &mut Rng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.random_f64()).collect()
}

/// The MLP never produces NaN/inf on in-range inputs.
#[test]
fn mlp_outputs_are_finite() {
    let mut rng = Rng::seed_from_u64(0xF117E);
    for _case in 0..64 {
        let state = random_state(&mut rng, 12);
        let seed = rng.next_u64() % 1000;
        let mut wrng = Rng::seed_from_u64(seed);
        let net = Mlp::paper_dqn(&mut wrng);
        let out = net.forward(&state);
        assert_eq!(out.len(), 4);
        for v in out {
            assert!(v.is_finite());
        }
    }
}

/// Backprop gradients are finite and the masked loss is non-negative.
#[test]
fn backprop_is_stable() {
    let mut rng = Rng::seed_from_u64(0xBAC);
    for _case in 0..64 {
        let state = random_state(&mut rng, 12);
        let target = rng.random_f64_range(-10.0, 10.0);
        let action = rng.random_below(4);
        let mut wrng = Rng::seed_from_u64(7);
        let net = Mlp::paper_dqn(&mut wrng);
        let mut tv = vec![0.0; 4];
        let mut mask = vec![0.0; 4];
        tv[action] = target;
        mask[action] = 1.0;
        let (_grads, loss) = net.backprop(&state, &tv, &mask);
        assert!(loss.is_finite());
        assert!(loss >= 0.0);
    }
}

/// A gradient step with small lr reduces the loss on that sample.
#[test]
fn gradient_step_descends() {
    let mut rng = Rng::seed_from_u64(0xDE5C);
    for _case in 0..64 {
        let state = random_state(&mut rng, 12);
        let target = rng.random_f64_range(-5.0, 5.0);
        let action = rng.random_below(4);
        let mut wrng = Rng::seed_from_u64(11);
        let mut net = Mlp::paper_dqn(&mut wrng);
        let mut tv = vec![0.0; 4];
        let mut mask = vec![0.0; 4];
        tv[action] = target;
        mask[action] = 1.0;
        let (grads, before) = net.backprop(&state, &tv, &mask);
        if before <= 1e-9 {
            continue;
        }
        net.apply(&grads, 0.01);
        let (_, after) = net.backprop(&state, &tv, &mask);
        assert!(after <= before + 1e-12, "loss rose: {before} -> {after}");
    }
}

/// The DQN agent selects valid actions and survives arbitrary rewards.
#[test]
fn dqn_agent_is_robust() {
    let mut rng = Rng::seed_from_u64(0xA6E27);
    for _case in 0..16 {
        let n = rng.random_range(4, 40);
        let states: Vec<Vec<f64>> = (0..n).map(|_| random_state(&mut rng, 12)).collect();
        let rewards: Vec<f64> = (0..n)
            .map(|_| rng.random_f64_range(-100.0, 100.0))
            .collect();
        let mut agent = DqnAgent::new(
            DqnConfig {
                minibatch: 4,
                ..Default::default()
            },
            5,
        );
        for i in 0..n {
            let a = agent.select_action(&states[i], true);
            assert!(a < 4);
            agent.observe(Transition {
                state: states[i].clone(),
                action: a,
                reward: rewards[i],
                next_state: states[(i + 1) % n].clone(),
            });
        }
        for _ in 0..10 {
            if let Some(loss) = agent.train_step() {
                assert!(loss.is_finite());
            }
        }
        let q = agent.q_values(&states[0]);
        assert!(q.iter().all(|v| v.is_finite()));
    }
}

/// Q-table updates converge toward the immediate reward of a
/// deterministic terminal-ish bandit.
#[test]
fn qtable_converges_to_reward() {
    let mut rng = Rng::seed_from_u64(0x9AB1E);
    for _case in 0..32 {
        let r = rng.random_f64_range(-10.0, 10.0);
        let mut a = QTableAgent::new(2, 2, 1);
        a.gamma = 0.0;
        let s = [0.2];
        for _ in 0..500 {
            a.update(&s, 0, r, &s);
        }
        let q = a.q_row(&a.discretize(&s));
        assert!((q[0] - r).abs() < 0.05, "Q {} vs r {r}", q[0]);
    }
}

/// Observation normalization is always inside [0, 1]^12.
#[test]
fn normalization_bounds() {
    let mut rng = Rng::seed_from_u64(0x0B5);
    for _case in 0..64 {
        let obs = Observation {
            l1d_misses: rng.random_f64_range(0.0, 1e9),
            l1i_misses: rng.random_f64_range(0.0, 1e9),
            l2_misses: rng.random_f64_range(0.0, 1e9),
            retired_instructions: rng.random_f64_range(0.0, 1e9),
            coherence_packets: rng.random_f64_range(0.0, 1e9),
            data_packets: rng.random_f64_range(0.0, 1e9),
            buffer_utilization: rng.random_f64_range(0.0, 10.0),
            injection_utilization: rng.random_f64_range(0.0, 10.0),
            router_throughput: rng.random_f64_range(0.0, 10.0),
            current_topology: rng.random_f64_range(0.0, 4.0),
            columns: rng.random_f64_range(0.0, 16.0),
            rows: rng.random_f64_range(0.0, 16.0),
        };
        let s = obs.normalize(&StateScales::default());
        for x in s {
            assert!((0.0..=1.0).contains(&x));
        }
    }
}

//! Property tests for the RL stack: numerical stability of the MLP,
//! consistency of Q-learning updates, and agent robustness to arbitrary
//! (normalized) inputs.

use adaptnoc_rl::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn state_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, dim..=dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MLP never produces NaN/inf on in-range inputs.
    #[test]
    fn mlp_outputs_are_finite(state in state_strategy(12), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::paper_dqn(&mut rng);
        let out = net.forward(&state);
        prop_assert_eq!(out.len(), 4);
        for v in out {
            prop_assert!(v.is_finite());
        }
    }

    /// Backprop gradients are finite and the masked loss is non-negative.
    #[test]
    fn backprop_is_stable(
        state in state_strategy(12),
        target in -10.0f64..10.0,
        action in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let net = Mlp::paper_dqn(&mut rng);
        let mut tv = vec![0.0; 4];
        let mut mask = vec![0.0; 4];
        tv[action] = target;
        mask[action] = 1.0;
        let (_grads, loss) = net.backprop(&state, &tv, &mask);
        prop_assert!(loss.is_finite());
        prop_assert!(loss >= 0.0);
    }

    /// A gradient step with small lr reduces the loss on that sample.
    #[test]
    fn gradient_step_descends(
        state in state_strategy(12),
        target in -5.0f64..5.0,
        action in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Mlp::paper_dqn(&mut rng);
        let mut tv = vec![0.0; 4];
        let mut mask = vec![0.0; 4];
        tv[action] = target;
        mask[action] = 1.0;
        let (grads, before) = net.backprop(&state, &tv, &mask);
        prop_assume!(before > 1e-9);
        net.apply(&grads, 0.01);
        let (_, after) = net.backprop(&state, &tv, &mask);
        prop_assert!(after <= before + 1e-12, "loss rose: {before} -> {after}");
    }

    /// The DQN agent selects valid actions and survives arbitrary rewards.
    #[test]
    fn dqn_agent_is_robust(
        states in prop::collection::vec(state_strategy(12), 4..40),
        rewards in prop::collection::vec(-100.0f64..100.0, 4..40),
    ) {
        let mut agent = DqnAgent::new(DqnConfig { minibatch: 4, ..Default::default() }, 5);
        let n = states.len().min(rewards.len());
        for i in 0..n {
            let a = agent.select_action(&states[i], true);
            prop_assert!(a < 4);
            agent.observe(Transition {
                state: states[i].clone(),
                action: a,
                reward: rewards[i],
                next_state: states[(i + 1) % n].clone(),
            });
        }
        for _ in 0..10 {
            if let Some(loss) = agent.train_step() {
                prop_assert!(loss.is_finite());
            }
        }
        let q = agent.q_values(&states[0]);
        prop_assert!(q.iter().all(|v| v.is_finite()));
    }

    /// Q-table updates converge toward the immediate reward of a
    /// deterministic terminal-ish bandit.
    #[test]
    fn qtable_converges_to_reward(r in -10.0f64..10.0) {
        let mut a = QTableAgent::new(2, 2, 1);
        a.gamma = 0.0;
        let s = [0.2];
        for _ in 0..500 {
            a.update(&s, 0, r, &s);
        }
        let q = a.q_row(&a.discretize(&s));
        prop_assert!((q[0] - r).abs() < 0.05, "Q {} vs r {r}", q[0]);
    }

    /// Observation normalization is always inside [0, 1]^12.
    #[test]
    fn normalization_bounds(
        a in 0.0f64..1e9, b in 0.0f64..1e9, c in 0.0f64..1e9,
        d in 0.0f64..1e9, e in 0.0f64..1e9, f in 0.0f64..1e9,
        u in 0.0f64..10.0, v in 0.0f64..10.0, w in 0.0f64..10.0,
        t in 0.0f64..4.0, cols in 0.0f64..16.0, rows in 0.0f64..16.0,
    ) {
        let obs = Observation {
            l1d_misses: a,
            l1i_misses: b,
            l2_misses: c,
            retired_instructions: d,
            coherence_packets: e,
            data_packets: f,
            buffer_utilization: u,
            injection_utilization: v,
            router_throughput: w,
            current_topology: t,
            columns: cols,
            rows,
        };
        let s = obs.normalize(&StateScales::default());
        for x in s {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}

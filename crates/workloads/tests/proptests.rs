//! Property tests for the workload engine: request/reply bookkeeping stays
//! consistent for arbitrary profile parameters.

use adaptnoc_core::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = AppProfile> {
    (
        1u8..16,
        1u16..120,
        0.0f64..1.0,
        0.0f64..3.0,
        1.0f64..120.0,
        prop::bool::ANY,
    )
        .prop_map(|(mlp, think, mc_frac, coh, ipr, gpu)| AppProfile {
            name: "RAND",
            class: if gpu { AppClass::Gpu } else { AppClass::Cpu },
            phases: vec![PhaseParams {
                duration: 5_000,
                mlp,
                think_time: think,
                mc_fraction: mc_frac,
                coherence_per_kcycle: coh,
                insts_per_request: ipr,
                l1i_miss_ratio: 0.03,
            }],
            insts_per_core: 1e12,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any profile: replies never exceed requests, instruction
    /// accounting matches completed round trips, and after the cores stop
    /// issuing, the network drains with all bookkeeping settled.
    #[test]
    fn workload_bookkeeping_is_consistent(profile in profile_strategy(), seed in 0u64..100) {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), profile.class == AppClass::Gpu);
        let cfg = SimConfig::baseline();
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let mut net = Network::new(spec, cfg).unwrap();
        let mut wl = Workload::new(&layout, std::slice::from_ref(&profile), seed);
        for _ in 0..6_000 {
            wl.tick(&mut net);
            net.step();
        }
        let e = wl.apps[0].epoch;
        prop_assert!(e.replies <= e.requests, "replies {} > requests {}", e.replies, e.requests);
        prop_assert!(e.mc_requests <= e.requests);
        let expected_insts = e.replies as f64 * profile.phases[0].insts_per_request;
        prop_assert!((e.insts - expected_insts).abs() < 1e-6);

        // Freeze issue (finish the app) and let the network drain; every
        // outstanding request must complete.
        wl.apps[0].finished_at = Some(net.now());
        let mut guard = 0u64;
        loop {
            wl.tick(&mut net);
            net.step();
            guard += 1;
            if net.in_flight() == 0 {
                break;
            }
            prop_assert!(guard < 200_000, "drain hung");
        }
        // After the drain, MC/L2 service queues may still hold entries for
        // a few more cycles; run the service models dry.
        for _ in 0..200 {
            wl.tick(&mut net);
            net.step();
        }
        while net.in_flight() > 0 {
            wl.tick(&mut net);
            net.step();
        }
        prop_assert_eq!(net.unroutable_events(), 0);
    }

    /// Deterministic replay: the same seed produces the same counters.
    #[test]
    fn workload_is_deterministic(seed in 0u64..50) {
        let run = |seed: u64| {
            let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), true);
            let cfg = SimConfig::baseline();
            let spec = mesh_chip(layout.grid, &cfg).unwrap();
            let mut net = Network::new(spec, cfg).unwrap();
            let mut wl = Workload::new(&layout, &[by_name("KM").unwrap()], seed);
            for _ in 0..3_000 {
                wl.tick(&mut net);
                net.step();
            }
            let e = wl.apps[0].epoch;
            (e.requests, e.replies, e.coherence_sent, e.net_lat_sum)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

//! Randomized tests for the workload engine: request/reply bookkeeping
//! stays consistent for arbitrary profile parameters. Cases come from the
//! in-tree seeded PRNG for reproducibility.

use adaptnoc_core::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::health::{Watchdog, WatchdogConfig};
use adaptnoc_sim::network::Network;
use adaptnoc_sim::rng::Rng;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;

fn random_profile(rng: &mut Rng) -> AppProfile {
    let gpu = rng.random_bool(0.5);
    AppProfile {
        name: "RAND",
        class: if gpu { AppClass::Gpu } else { AppClass::Cpu },
        phases: vec![PhaseParams {
            duration: 5_000,
            mlp: rng.random_range(1, 16) as u8,
            think_time: rng.random_range(1, 120) as u16,
            mc_fraction: rng.random_f64(),
            coherence_per_kcycle: rng.random_f64_range(0.0, 3.0),
            insts_per_request: rng.random_f64_range(1.0, 120.0),
            l1i_miss_ratio: 0.03,
        }],
        insts_per_core: 1e12,
    }
}

/// For any profile: replies never exceed requests, instruction
/// accounting matches completed round trips, and after the cores stop
/// issuing, the network drains with all bookkeeping settled.
#[test]
fn workload_bookkeeping_is_consistent() {
    let mut rng = Rng::seed_from_u64(0xB00C);
    for _case in 0..16 {
        let profile = random_profile(&mut rng);
        let seed = rng.random_below(100) as u64;
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), profile.class == AppClass::Gpu);
        let cfg = SimConfig::baseline();
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let mut net = Network::new(spec, cfg).unwrap();
        let mut wl = Workload::new(&layout, std::slice::from_ref(&profile), seed);
        for _ in 0..6_000 {
            wl.tick(&mut net);
            net.step();
        }
        let e = wl.apps[0].epoch;
        assert!(
            e.replies <= e.requests,
            "replies {} > requests {}",
            e.replies,
            e.requests
        );
        assert!(e.mc_requests <= e.requests);
        let expected_insts = e.replies as f64 * profile.phases[0].insts_per_request;
        assert!((e.insts - expected_insts).abs() < 1e-6);

        // Freeze issue (finish the app) and let the network drain; every
        // outstanding request must complete. The watchdog (rather than a
        // raw cycle bound) flags a hang: a slow but progressing drain is
        // fine, while a wedge fails fast with a stall diagnosis.
        wl.apps[0].finished_at = Some(net.now());
        let mut watchdog = Watchdog::new(WatchdogConfig::default());
        loop {
            wl.tick(&mut net);
            net.step();
            if net.in_flight() == 0 {
                break;
            }
            if let Some(report) = watchdog.observe(&net) {
                panic!("drain hung:\n{report}");
            }
        }
        // After the drain, MC/L2 service queues may still hold entries for
        // a few more cycles; run the service models dry.
        for _ in 0..200 {
            wl.tick(&mut net);
            net.step();
        }
        while net.in_flight() > 0 {
            wl.tick(&mut net);
            net.step();
        }
        assert_eq!(net.unroutable_events(), 0);
    }
}

/// Deterministic replay: the same seed produces the same counters.
#[test]
fn workload_is_deterministic() {
    let run = |seed: u64| {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), true);
        let cfg = SimConfig::baseline();
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let mut net = Network::new(spec, cfg).unwrap();
        let mut wl = Workload::new(&layout, &[by_name("KM").unwrap()], seed);
        for _ in 0..3_000 {
            wl.tick(&mut net);
            net.step();
        }
        let e = wl.apps[0].epoch;
        (e.requests, e.replies, e.coherence_sent, e.net_lat_sum)
    };
    let mut rng = Rng::seed_from_u64(0xD7E);
    for _case in 0..8 {
        let seed = rng.random_below(50) as u64;
        assert_eq!(run(seed), run(seed));
    }
}

//! Open-loop synthetic traffic patterns for microbenchmark-style sweeps
//! (latency vs. load, ablations).

use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::rng::Rng;
use adaptnoc_topology::geom::{Coord, Grid, Rect};

/// Classic NoC traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniform random destinations.
    Uniform,
    /// Transpose: `(x, y) -> (y, x)` within the region.
    Transpose,
    /// Bit-complement: mirrored coordinates.
    BitComplement,
    /// All traffic to one hotspot node (e.g. the MC).
    Hotspot(NodeId),
    /// Nearest neighbour (random adjacent tile).
    Neighbor,
    /// Uniform random destination on a *different* chip of a chiplet
    /// fabric (chips are `chip_w x chip_h` tile blocks): every packet
    /// crosses at least one serialized inter-chip link, stressing the
    /// SerDes boundary instead of the on-chip mesh.
    CrossChip {
        /// Tiles per chip row.
        chip_w: u8,
        /// Tiles per chip column.
        chip_h: u8,
    },
}

/// An open-loop injector over a region.
#[derive(Debug)]
pub struct SyntheticInjector {
    /// Region driven.
    pub rect: Rect,
    /// Injection rate in packets per node per cycle.
    pub rate: f64,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Fraction of packets that are multi-flit replies.
    pub data_fraction: f64,
    grid: Grid,
    nodes: Vec<NodeId>,
    next_id: u64,
    rng: Rng,
}

impl SyntheticInjector {
    /// Creates an injector.
    pub fn new(grid: Grid, rect: Rect, pattern: Pattern, rate: f64, seed: u64) -> Self {
        SyntheticInjector {
            rect,
            rate,
            pattern,
            data_fraction: 0.4,
            grid,
            nodes: rect.iter().map(|c| grid.node(c)).collect(),
            next_id: 0,
            rng: Rng::seed_from_u64(seed),
        }
    }

    fn destination(&mut self, src: Coord) -> NodeId {
        match self.pattern {
            Pattern::Uniform => loop {
                let d = self.nodes[self.rng.random_below(self.nodes.len())];
                if d != self.grid.node(src) {
                    return d;
                }
            },
            Pattern::Transpose => {
                let rx = src.x - self.rect.x;
                let ry = src.y - self.rect.y;
                let tx = self.rect.x + (ry % self.rect.w);
                let ty = self.rect.y + (rx % self.rect.h);
                self.grid.node(Coord::new(tx, ty))
            }
            Pattern::BitComplement => {
                let tx = self.rect.x + (self.rect.w - 1 - (src.x - self.rect.x));
                let ty = self.rect.y + (self.rect.h - 1 - (src.y - self.rect.y));
                self.grid.node(Coord::new(tx, ty))
            }
            Pattern::Hotspot(n) => n,
            Pattern::Neighbor => {
                let dirs = adaptnoc_sim::ids::Direction::ALL;
                for _ in 0..8 {
                    let d = dirs[self.rng.random_below(4)];
                    if let Some(n) = self.grid.neighbor(src, d) {
                        if self.rect.contains(n) {
                            return self.grid.node(n);
                        }
                    }
                }
                self.grid.node(src)
            }
            Pattern::CrossChip { chip_w, chip_h } => {
                let chip = (src.x / chip_w, src.y / chip_h);
                // Bounded rejection sampling; a single-chip region falls
                // back to the source (the caller drops src == dst).
                for _ in 0..64 {
                    let d = self.nodes[self.rng.random_below(self.nodes.len())];
                    let dc = self.grid.node_coord(d);
                    if (dc.x / chip_w, dc.y / chip_h) != chip {
                        return d;
                    }
                }
                self.grid.node(src)
            }
        }
    }

    /// Injects this cycle's packets. Returns how many were offered.
    ///
    /// Rates at or above 1.0 are honoured: every source injects
    /// `floor(rate)` packets each cycle plus one more with probability
    /// `fract(rate)` (stochastic rounding), so the expected offered load
    /// equals `rate` exactly and sweeps can drive sources past the
    /// one-packet-per-cycle Bernoulli ceiling into overload. For rates
    /// below 1.0 this reduces to the classic Bernoulli process (same
    /// decision, same RNG stream as before).
    pub fn tick(&mut self, net: &mut Network) -> usize {
        let mut offered = 0;
        let whole = self.rate.max(0.0) as u64;
        let frac = self.rate.max(0.0) - whole as f64;
        for i in 0..self.nodes.len() {
            let mut count = whole;
            if frac > 0.0 && self.rng.random_f64() < frac {
                count += 1;
            }
            for _ in 0..count {
                let src = self.nodes[i];
                let src_c = self.grid.node_coord(src);
                let dst = self.destination(src_c);
                if dst == src {
                    continue;
                }
                self.next_id += 1;
                let pkt = if self.rng.random_f64() < self.data_fraction {
                    Packet::reply(self.next_id, src, dst, 0)
                } else {
                    Packet::request(self.next_id, src, dst, 0)
                };
                if net.inject(pkt).is_ok() {
                    offered += 1;
                }
            }
        }
        offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_topology::prelude::*;

    fn net() -> Network {
        let cfg = SimConfig::baseline();
        Network::new(mesh_chip(Grid::new(4, 4), &cfg).unwrap(), cfg).unwrap()
    }

    #[test]
    fn uniform_injection_delivers() {
        let grid = Grid::new(4, 4);
        let mut inj =
            SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::Uniform, 0.05, 1);
        let mut net = net();
        let mut offered = 0;
        for _ in 0..2000 {
            offered += inj.tick(&mut net);
            net.step();
        }
        assert!(offered > 50);
        while net.in_flight() > 0 {
            net.step();
        }
        assert_eq!(net.drain_delivered().len(), offered);
    }

    #[test]
    fn transpose_is_deterministic_mapping() {
        let grid = Grid::new(4, 4);
        let mut inj =
            SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::Transpose, 1.0, 1);
        let d = inj.destination(Coord::new(1, 3));
        assert_eq!(grid.node_coord(d), Coord::new(3, 1));
    }

    #[test]
    fn bit_complement_mapping() {
        let grid = Grid::new(4, 4);
        let mut inj =
            SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::BitComplement, 1.0, 1);
        let d = inj.destination(Coord::new(0, 0));
        assert_eq!(grid.node_coord(d), Coord::new(3, 3));
    }

    #[test]
    fn hotspot_targets_single_node() {
        let grid = Grid::new(4, 4);
        let hot = grid.node(Coord::new(0, 0));
        let mut inj =
            SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::Hotspot(hot), 0.1, 1);
        let mut net = net();
        for _ in 0..500 {
            inj.tick(&mut net);
            net.step();
        }
        while net.in_flight() > 0 {
            net.step();
        }
        for d in net.drain_delivered() {
            assert_eq!(d.packet.dst, hot);
        }
    }

    #[test]
    fn neighbor_stays_adjacent() {
        let grid = Grid::new(4, 4);
        let mut inj =
            SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::Neighbor, 1.0, 1);
        for c in Rect::new(0, 0, 4, 4).iter() {
            let d = inj.destination(c);
            assert!(grid.node_coord(d).manhattan(c) <= 1);
        }
    }

    #[test]
    fn cross_chip_always_leaves_the_source_chip() {
        use adaptnoc_topology::chiplet::{chiplet_chip, ChipletConfig};
        let cc = ChipletConfig::new(2, 2, 4, 4);
        let grid = cc.grid();
        let pattern = Pattern::CrossChip {
            chip_w: 4,
            chip_h: 4,
        };
        let mut inj = SyntheticInjector::new(grid, Rect::new(0, 0, 8, 8), pattern, 1.0, 3);
        for c in Rect::new(0, 0, 8, 8).iter() {
            let d = grid.node_coord(inj.destination(c));
            assert_ne!((d.x / 4, d.y / 4), (c.x / 4, c.y / 4));
        }
        // And the traffic actually flows over a chiplet fabric.
        let cfg = SimConfig::baseline();
        let mut net = Network::new(chiplet_chip(&cc, &cfg).unwrap(), cfg).unwrap();
        let mut inj = SyntheticInjector::new(grid, Rect::new(0, 0, 8, 8), pattern, 0.02, 3);
        let mut offered = 0;
        for _ in 0..500 {
            offered += inj.tick(&mut net);
            net.step();
        }
        assert!(offered > 20);
        while net.in_flight() > 0 {
            net.step();
        }
        assert_eq!(net.drain_delivered().len(), offered);
    }

    #[test]
    fn rates_above_one_offer_multiple_packets_per_cycle() {
        let grid = Grid::new(4, 4);
        let mut inj = SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::Uniform, 2.5, 9);
        let mut net = net();
        let cycles = 400usize;
        let mut offered = 0;
        for _ in 0..cycles {
            offered += inj.tick(&mut net);
            net.step();
        }
        // 16 sources at 2.5 pkts/node/cycle: expectation 40/cycle; the
        // stochastic-rounding remainder keeps it within a few percent.
        let per_cycle = offered as f64 / cycles as f64;
        assert!(
            (38.0..=42.0).contains(&per_cycle),
            "offered {per_cycle}/cycle should track rate*sources = 40"
        );
    }

    #[test]
    fn higher_rate_raises_latency() {
        let grid = Grid::new(4, 4);
        let run = |rate: f64| -> f64 {
            let mut inj =
                SyntheticInjector::new(grid, Rect::new(0, 0, 4, 4), Pattern::Uniform, rate, 5);
            let mut net = net();
            for _ in 0..4000 {
                inj.tick(&mut net);
                net.step();
            }
            net.totals().stats.avg_packet_latency()
        };
        let low = run(0.02);
        let high = run(0.45);
        assert!(high > low * 1.3, "load must raise latency: {low} -> {high}");
    }
}

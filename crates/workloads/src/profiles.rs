//! Synthetic application profiles standing in for the paper's Parsec and
//! Rodinia benchmarks (Table II).
//!
//! The full-system gem5-GPU runs of the paper are not reproducible here, so
//! each benchmark is modeled as a closed-loop memory-system driver: every
//! core keeps up to `mlp` misses outstanding, waits for the round trip
//! through the NoC (to its MC or to a shared-L2 slice), thinks for a few
//! cycles, and reissues. Phase lists capture the time-varying behaviour
//! the RL controller exploits. Parameters encode the qualitative
//! characterizations used in the paper (e.g. CA/SW/X264 memory-heavy among
//! the CPU apps; GPU apps with much higher memory-level parallelism and
//! reply-dominated traffic).

/// Application class (drives default placement and figure grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Latency-sensitive multi-threaded CPU application (Parsec).
    Cpu,
    /// Throughput-oriented GPU application (Rodinia).
    Gpu,
}

/// One execution phase of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseParams {
    /// Phase length in cycles.
    pub duration: u64,
    /// Outstanding misses per core (memory-level parallelism).
    pub mlp: u8,
    /// Compute cycles between a reply and the next issue.
    pub think_time: u16,
    /// Fraction of requests that go off-chip (to the MC); the rest hit
    /// shared-L2 slices distributed over the region.
    pub mc_fraction: f64,
    /// Coherence packets per core per 1000 cycles (open loop).
    pub coherence_per_kcycle: f64,
    /// Instructions retired per completed request (inverse miss intensity).
    pub insts_per_request: f64,
    /// L1I misses per request (only feeds the RL state vector).
    pub l1i_miss_ratio: f64,
}

impl PhaseParams {
    /// A quiet compute phase.
    pub fn compute(duration: u64) -> Self {
        PhaseParams {
            duration,
            mlp: 2,
            think_time: 120,
            mc_fraction: 0.3,
            coherence_per_kcycle: 0.5,
            insts_per_request: 150.0,
            l1i_miss_ratio: 0.02,
        }
    }

    /// A memory-intensive phase.
    pub fn memory(duration: u64) -> Self {
        PhaseParams {
            duration,
            mlp: 4,
            think_time: 20,
            mc_fraction: 0.6,
            coherence_per_kcycle: 1.0,
            insts_per_request: 30.0,
            l1i_miss_ratio: 0.05,
        }
    }
}

/// A named application profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Short name from Table II.
    pub name: &'static str,
    /// CPU or GPU class.
    pub class: AppClass,
    /// Phase schedule, looped until the instruction target is met.
    pub phases: Vec<PhaseParams>,
    /// Target retired instructions per core (execution-time experiments).
    pub insts_per_core: f64,
}

fn cpu(name: &'static str, phases: Vec<PhaseParams>) -> AppProfile {
    AppProfile {
        name,
        class: AppClass::Cpu,
        phases,
        insts_per_core: 120_000.0,
    }
}

fn gpu(name: &'static str, phases: Vec<PhaseParams>) -> AppProfile {
    AppProfile {
        name,
        class: AppClass::Gpu,
        phases,
        insts_per_core: 60_000.0,
    }
}

fn p(
    duration: u64,
    mlp: u8,
    think_time: u16,
    mc_fraction: f64,
    coherence_per_kcycle: f64,
    insts_per_request: f64,
) -> PhaseParams {
    PhaseParams {
        duration,
        mlp,
        think_time,
        mc_fraction,
        coherence_per_kcycle,
        insts_per_request,
        l1i_miss_ratio: 0.03,
    }
}

/// The seven Parsec (CPU) profiles of Table II.
pub fn parsec_suite() -> Vec<AppProfile> {
    vec![
        // Blackscholes: embarrassingly parallel, compute-bound, sparse
        // traffic.
        cpu("BS", vec![p(30_000, 2, 140, 0.30, 0.3, 180.0)]),
        // Swaptions: compute with periodic memory bursts (picks the tree
        // ~8% of the time in the paper).
        cpu(
            "SW",
            vec![
                p(24_000, 2, 100, 0.35, 0.5, 120.0),
                p(8_000, 3, 25, 0.65, 0.6, 35.0),
            ],
        ),
        // x264: streaming frames; alternating motion-estimation (compute)
        // and reference-fetch (memory) phases.
        cpu(
            "X264",
            vec![
                p(16_000, 3, 70, 0.40, 1.0, 90.0),
                p(10_000, 3, 22, 0.65, 0.8, 30.0),
            ],
        ),
        // Ferret: pipelined similarity search; steady moderate traffic with
        // heavy inter-stage communication.
        cpu("FR", vec![p(30_000, 3, 80, 0.35, 2.5, 100.0)]),
        // Bodytrack: bursty per-frame phases.
        cpu(
            "BT",
            vec![
                p(20_000, 2, 110, 0.30, 1.2, 140.0),
                p(8_000, 3, 45, 0.45, 1.5, 60.0),
            ],
        ),
        // Canneal: cache-hostile random accesses; the most memory-bound
        // CPU app.
        cpu("CA", vec![p(30_000, 2, 10, 0.65, 1.0, 25.0)]),
        // Fluidanimate: nearest-neighbour exchanges, coherence-heavy.
        cpu("FL", vec![p(30_000, 3, 60, 0.25, 4.0, 80.0)]),
    ]
}

/// The seven Rodinia (GPU) profiles of Table II.
pub fn rodinia_suite() -> Vec<AppProfile> {
    vec![
        // Kmeans: streaming, very high MLP, reply-bandwidth bound.
        gpu("KM", vec![p(30_000, 12, 8, 0.80, 0.1, 6.0)]),
        // Back-propagation: alternating forward (read-heavy) and update
        // phases.
        gpu(
            "BP",
            vec![
                p(14_000, 10, 10, 0.70, 0.2, 8.0),
                p(10_000, 5, 30, 0.40, 0.3, 24.0),
            ],
        ),
        // Heart-Wall: image processing with moderate locality.
        gpu("HW", vec![p(30_000, 8, 15, 0.55, 0.2, 14.0)]),
        // Gaussian elimination: shrinking working set; bursty rows.
        gpu(
            "GA",
            vec![
                p(12_000, 9, 10, 0.65, 0.2, 10.0),
                p(8_000, 4, 40, 0.35, 0.2, 30.0),
            ],
        ),
        // Breadth-First-Search: irregular frontier expansion.
        gpu(
            "BFS",
            vec![
                p(10_000, 9, 12, 0.60, 0.4, 9.0),
                p(6_000, 3, 60, 0.30, 0.4, 40.0),
            ],
        ),
        // Needleman-Wunsch: wavefront over the score matrix; neighbour
        // (L2-slice) dominated.
        gpu("NW", vec![p(30_000, 7, 18, 0.30, 0.5, 16.0)]),
        // HotSpot: stencil; neighbour exchanges plus moderate DRAM.
        gpu("HS", vec![p(30_000, 8, 14, 0.40, 0.5, 13.0)]),
    ]
}

/// Looks a profile up by its Table-II short name.
pub fn by_name(name: &str) -> Option<AppProfile> {
    parsec_suite()
        .into_iter()
        .chain(rodinia_suite())
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_profiles_match_table_ii() {
        assert_eq!(parsec_suite().len(), 7);
        assert_eq!(rodinia_suite().len(), 7);
        let names: Vec<&str> = parsec_suite()
            .iter()
            .chain(rodinia_suite().iter())
            .map(|a| a.name)
            .collect::<Vec<_>>();
        for expected in [
            "BS", "SW", "X264", "FR", "BT", "CA", "FL", "KM", "BP", "HW", "GA", "BFS", "NW", "HS",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn gpu_profiles_have_higher_mlp() {
        let cpu_max = parsec_suite()
            .iter()
            .flat_map(|a| a.phases.iter().map(|p| p.mlp))
            .max()
            .unwrap();
        let gpu_max = rodinia_suite()
            .iter()
            .flat_map(|a| a.phases.iter().map(|p| p.mlp))
            .max()
            .unwrap();
        assert!(gpu_max > cpu_max * 2, "GPU traffic intensity must dominate");
    }

    #[test]
    fn all_parameters_sane() {
        for a in parsec_suite().into_iter().chain(rodinia_suite()) {
            assert!(!a.phases.is_empty(), "{}", a.name);
            assert!(a.insts_per_core > 0.0);
            for ph in &a.phases {
                assert!(ph.duration > 0);
                assert!(ph.mlp >= 1);
                assert!((0.0..=1.0).contains(&ph.mc_fraction));
                assert!(ph.insts_per_request > 0.0);
                assert!(ph.coherence_per_kcycle >= 0.0);
            }
        }
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert_eq!(by_name("ca").unwrap().name, "CA");
        assert_eq!(by_name("KM").unwrap().class, AppClass::Gpu);
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn phase_helpers() {
        let c = PhaseParams::compute(1000);
        let m = PhaseParams::memory(1000);
        assert!(m.mc_fraction > c.mc_fraction);
        assert!(m.insts_per_request < c.insts_per_request);
        assert!(m.think_time < c.think_time);
    }
}

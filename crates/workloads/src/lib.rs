//! # adaptnoc-workloads
//!
//! Synthetic workload models substituting for the paper's Parsec/Rodinia
//! full-system runs: 14 named closed-loop application profiles
//! ([`profiles`]), the core/MC/L2 service engine that drives the network
//! and measures execution time ([`engine`]), and open-loop synthetic
//! traffic patterns for sweeps ([`traffic`]).
//!
//! ```
//! use adaptnoc_workloads::prelude::*;
//! use adaptnoc_core::prelude::*;
//! use adaptnoc_topology::prelude::*;
//! use adaptnoc_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
//! let spec = mesh_chip(layout.grid, &SimConfig::baseline())?;
//! let mut net = Network::new(spec, SimConfig::baseline())?;
//! let mut wl = Workload::new(&layout, &[by_name("CA").unwrap()], 42);
//! for _ in 0..1000 {
//!     wl.tick(&mut net);
//!     net.step();
//! }
//! assert!(wl.apps[0].epoch.requests > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod open;
pub mod profiles;
pub mod traffic;

use adaptnoc_sim::network::Network;

/// A traffic source that drives a [`Network`] one cycle at a time.
///
/// Both halves of the workload story implement it — the closed-loop
/// [`engine::Workload`] and [`traffic::SyntheticInjector`], and the
/// open-system [`open::OpenLoopEngine`] — so harnesses (campaigns, the
/// scenario runner) can hold any mix of sources behind one interface.
pub trait Injector {
    /// Generates/injects this cycle's traffic. Returns the number of
    /// packets offered to the network.
    fn tick(&mut self, net: &mut Network) -> usize;
}

impl Injector for engine::Workload {
    fn tick(&mut self, net: &mut Network) -> usize {
        engine::Workload::tick(self, net)
    }
}

impl Injector for traffic::SyntheticInjector {
    fn tick(&mut self, net: &mut Network) -> usize {
        traffic::SyntheticInjector::tick(self, net)
    }
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::engine::{AppInstance, EpochCounters, MemoryParams, Workload};
    pub use crate::open::{
        Arrival, DestPattern, OpenLoopEngine, OpenStats, RateShape, TrafficSpec,
    };
    pub use crate::profiles::{
        by_name, parsec_suite, rodinia_suite, AppClass, AppProfile, PhaseParams,
    };
    pub use crate::traffic::{Pattern, SyntheticInjector};
    pub use crate::Injector;
}

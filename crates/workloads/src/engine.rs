//! The closed-loop workload engine.
//!
//! Drives a [`Network`] with the synthetic applications of
//! [`crate::profiles`]: cores issue memory requests (to their MC or to
//! shared-L2 slices) with bounded memory-level parallelism, the MC and L2
//! models reply after their service latencies, and instruction retirement
//! advances with completed round trips — so execution time responds to NoC
//! latency exactly as in the paper's full-system runs.

use crate::profiles::{AppProfile, PhaseParams};
use adaptnoc_core::controller::RegionTelemetry;
use adaptnoc_core::layout::{ChipLayout, NodeKind};
use adaptnoc_power::energy::EnergyModel;
use adaptnoc_rl::state::Observation;
use adaptnoc_sim::flit::{Packet, PacketKind};
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::rng::Rng;
use adaptnoc_sim::stats::{CycleHistogram, EpochReport};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Memory-system service parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryParams {
    /// Off-chip access latency at the MC, cycles.
    pub dram_latency: u64,
    /// Minimum spacing between MC replies (bandwidth), cycles.
    pub mc_service_interval: u64,
    /// Shared-L2 slice hit latency, cycles.
    pub l2_latency: u64,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            dram_latency: 60,
            mc_service_interval: 1,
            l2_latency: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotState {
    Ready { at: u64 },
    Waiting,
}

#[derive(Debug, Clone)]
struct CoreState {
    node: NodeId,
    slots: Vec<SlotState>,
}

#[derive(Debug, Clone, Default)]
struct McState {
    next_free: u64,
    pending: BinaryHeap<Reverse<(u64, u16, u64)>>, // (ready, dst node, tag)
}

/// Per-epoch workload counters for one application.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochCounters {
    /// Requests issued (L1D misses).
    pub requests: u64,
    /// Requests that went to a memory controller (L2 misses).
    pub mc_requests: u64,
    /// Coherence packets sent.
    pub coherence_sent: u64,
    /// Replies received (completed round trips).
    pub replies: u64,
    /// Instructions retired.
    pub insts: f64,
    /// Synthetic L1I misses.
    pub l1i: f64,
    /// Sum of network latencies of delivered packets attributed to the app.
    pub net_lat_sum: u64,
    /// Sum of queuing latencies.
    pub queue_lat_sum: u64,
    /// Sum of hop counts.
    pub hops_sum: u64,
    /// Delivered packets attributed to the app.
    pub delivered: u64,
    /// Delivered data (reply) packets.
    pub data_delivered: u64,
    /// Delivered coherence packets.
    pub coherence_delivered: u64,
    /// NI source-queue length samples.
    pub inj_queue_sum: u64,
    /// Number of samples taken.
    pub inj_queue_samples: u64,
    /// Log2-bucket histogram of total packet latency (creation to
    /// ejection) for packets attributed to the app — the quantile
    /// substrate behind [`EpochCounters::latency_quantile`].
    pub latency_hist: CycleHistogram,
}

impl EpochCounters {
    /// Mean network latency of the epoch (cycles).
    pub fn avg_network_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.net_lat_sum as f64 / self.delivered as f64
        }
    }

    /// Mean queuing latency of the epoch (cycles).
    pub fn avg_queuing_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.queue_lat_sum as f64 / self.delivered as f64
        }
    }

    /// Mean hop count of the epoch.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered as f64
        }
    }

    /// The `q`-quantile of total packet latency this epoch (cycles).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency_hist.quantile(q)
    }

    /// Median total packet latency this epoch (cycles).
    pub fn p50_latency(&self) -> f64 {
        self.latency_hist.p50()
    }

    /// 95th-percentile total packet latency this epoch (cycles).
    pub fn p95_latency(&self) -> f64 {
        self.latency_hist.p95()
    }

    /// 99th-percentile total packet latency this epoch (cycles).
    pub fn p99_latency(&self) -> f64 {
        self.latency_hist.p99()
    }

    /// 99.9th-percentile total packet latency this epoch (cycles).
    pub fn p999_latency(&self) -> f64 {
        self.latency_hist.p999()
    }
}

/// One running application instance.
#[derive(Debug, Clone)]
pub struct AppInstance {
    /// The profile driving this app.
    pub profile: AppProfile,
    /// Region index in the layout.
    pub region_idx: usize,
    /// Primary MC node (tree root).
    pub mc: NodeId,
    /// All of the region's MCs (one per 2x4 block).
    pub mcs: Vec<NodeId>,
    /// Additional shared MCs borrowed from adjacent regions (Sec. II-C2).
    pub extra_mcs: Vec<NodeId>,
    cores: Vec<CoreState>,
    phase: usize,
    phase_elapsed: u64,
    /// Counters for the current epoch.
    pub epoch: EpochCounters,
    /// Total instructions retired.
    pub total_insts: f64,
    /// Cycle the app finished (hit its instruction target), if it has.
    pub finished_at: Option<u64>,
    target_insts: f64,
}

impl AppInstance {
    /// The current phase parameters.
    pub fn phase(&self) -> &PhaseParams {
        &self.profile.phases[self.phase]
    }

    fn advance_phase(&mut self) {
        self.phase_elapsed += 1;
        if self.phase_elapsed >= self.phase().duration {
            self.phase_elapsed = 0;
            self.phase = (self.phase + 1) % self.profile.phases.len();
        }
    }

    /// Whether the app reached its instruction target.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Progress towards the instruction target in [0, 1].
    pub fn progress(&self) -> f64 {
        (self.total_insts / self.target_insts).min(1.0)
    }
}

/// The workload: all running applications plus the MC and L2 service
/// models.
#[derive(Debug)]
pub struct Workload {
    /// Running applications (one per region).
    pub apps: Vec<AppInstance>,
    /// Memory-system parameters.
    pub params: MemoryParams,
    node_app: Vec<Option<usize>>,
    /// MC service models, sorted by node id. A sorted vec (binary-search
    /// lookup) instead of a `HashMap` keeps the per-cycle reply scan in a
    /// deterministic order regardless of hasher state — required for the
    /// parallel campaign runner's byte-identical-output guarantee — and
    /// drops hashing from the tick hot path.
    mcs: Vec<(u16, McState)>,
    l2_pending: BinaryHeap<Reverse<(u64, u16, u16, u64)>>, // (ready, slice, requester, tag)
    tag_slot: HashMap<u64, (usize, usize, usize)>,
    next_id: u64,
    next_tag: u64,
    rng: Rng,
}

impl Workload {
    /// Binds one profile per region of the layout.
    ///
    /// # Panics
    ///
    /// Panics if the profile count disagrees with the region count.
    pub fn new(layout: &ChipLayout, profiles: &[AppProfile], seed: u64) -> Self {
        assert_eq!(
            layout.regions.len(),
            profiles.len(),
            "one profile per region"
        );
        let mut node_app = vec![None; layout.grid.tiles()];
        let mut mcs: Vec<(u16, McState)> = Vec::new();
        let apps: Vec<AppInstance> = layout
            .regions
            .iter()
            .enumerate()
            .zip(profiles)
            .map(|((i, region), profile)| {
                let max_mlp = profile.phases.iter().map(|p| p.mlp).max().unwrap() as usize;
                let mut cores = Vec::new();
                for c in region.rect.iter() {
                    let n = layout.grid.node(c);
                    node_app[n.index()] = Some(i);
                    if layout.kind(n) == NodeKind::Mc {
                        if let Err(at) = mcs.binary_search_by_key(&n.0, |(k, _)| *k) {
                            mcs.insert(at, (n.0, McState::default()));
                        }
                    } else {
                        cores.push(CoreState {
                            node: n,
                            slots: vec![SlotState::Ready { at: 0 }; max_mlp],
                        });
                    }
                }
                let target = profile.insts_per_core * cores.len() as f64;
                AppInstance {
                    profile: profile.clone(),
                    region_idx: i,
                    mc: region.mc,
                    mcs: region.mcs.clone(),
                    extra_mcs: Vec::new(),
                    cores,
                    phase: 0,
                    phase_elapsed: 0,
                    epoch: EpochCounters::default(),
                    total_insts: 0.0,
                    finished_at: None,
                    target_insts: target,
                }
            })
            .collect();
        Workload {
            apps,
            params: MemoryParams::default(),
            node_app,
            mcs,
            l2_pending: BinaryHeap::new(),
            tag_slot: HashMap::new(),
            next_id: 0,
            next_tag: 0,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Disables the instruction targets: applications run forever
    /// (steady-state measurement mode).
    pub fn set_endless(&mut self) {
        for a in self.apps.iter_mut() {
            a.target_insts = f64::INFINITY;
        }
    }

    /// Lets `app` also use `mc` (a shared MC of an adjacent region); the MC
    /// service model must already know the node (it belongs to some
    /// region).
    pub fn add_shared_mc(&mut self, app: usize, mc: NodeId) {
        self.apps[app].extra_mcs.push(mc);
        if let Err(at) = self.mcs.binary_search_by_key(&mc.0, |(k, _)| *k) {
            self.mcs.insert(at, (mc.0, McState::default()));
        }
    }

    /// Whether all applications finished.
    pub fn finished(&self) -> bool {
        self.apps.iter().all(|a| a.finished())
    }

    /// The completion time of the slowest app, if all finished.
    pub fn execution_time(&self) -> Option<u64> {
        self.apps
            .iter()
            .map(|a| a.finished_at)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// One cycle: dispatch deliveries, run the MC/L2 service models, issue
    /// new requests and coherence traffic. Returns the number of packets
    /// offered to the network this cycle (the [`crate::Injector`]
    /// contract).
    pub fn tick(&mut self, net: &mut Network) -> usize {
        let mut offered = 0;
        let now = net.now();

        // 1. Dispatch deliveries.
        for d in net.drain_delivered() {
            let pkt = &d.packet;
            // Attribute stats to the app on the "core side".
            let owner = match pkt.kind {
                PacketKind::Reply => self.node_app[pkt.dst.index()],
                _ => self.node_app[pkt.src.index()],
            };
            if let Some(a) = owner {
                let e = &mut self.apps[a].epoch;
                e.delivered += 1;
                e.net_lat_sum += d.network_latency();
                e.queue_lat_sum += d.queuing_latency();
                e.hops_sum += d.hops as u64;
                e.latency_hist.observe(d.total_latency());
                match pkt.kind {
                    PacketKind::Reply => e.data_delivered += 1,
                    PacketKind::Coherence => e.coherence_delivered += 1,
                    PacketKind::Request => {}
                }
            }

            if let Ok(at) = self.mcs.binary_search_by_key(&pkt.dst.0, |(k, _)| *k) {
                let mc = &mut self.mcs[at].1;
                if pkt.kind == PacketKind::Request {
                    // Off-chip access: reply after DRAM latency, paced by
                    // the MC service bandwidth.
                    let ready = (now + self.params.dram_latency).max(mc.next_free);
                    mc.next_free = ready + self.params.mc_service_interval;
                    mc.pending.push(Reverse((ready, pkt.src.0, pkt.tag)));
                }
                continue;
            }
            match pkt.kind {
                PacketKind::Request => {
                    // Shared-L2 slice hit at the destination tile.
                    self.l2_pending.push(Reverse((
                        now + self.params.l2_latency,
                        pkt.dst.0,
                        pkt.src.0,
                        pkt.tag,
                    )));
                }
                PacketKind::Reply => {
                    if let Some((a, c, s)) = self.tag_slot.remove(&pkt.tag) {
                        let app = &mut self.apps[a];
                        let think = app.phase().think_time as u64;
                        let ipr = app.phase().insts_per_request;
                        app.cores[c].slots[s] = SlotState::Ready { at: now + think };
                        app.epoch.replies += 1;
                        app.epoch.insts += ipr;
                        app.epoch.l1i += app.phase().l1i_miss_ratio;
                        app.total_insts += ipr;
                        if app.finished_at.is_none() && app.total_insts >= app.target_insts {
                            app.finished_at = Some(now);
                        }
                    }
                }
                PacketKind::Coherence => {}
            }
        }

        // 2. MC replies (ascending node order: the reply injection order is
        // part of the deterministic behaviour contract).
        for (mc_node, mc) in self.mcs.iter_mut() {
            while let Some(&Reverse((ready, dst, tag))) = mc.pending.peek() {
                if ready > now {
                    break;
                }
                mc.pending.pop();
                self.next_id += 1;
                if net
                    .inject(Packet::reply(
                        self.next_id,
                        NodeId(*mc_node),
                        NodeId(dst),
                        tag,
                    ))
                    .is_ok()
                {
                    offered += 1;
                }
            }
        }

        // 3. L2 replies.
        while let Some(&Reverse((ready, slice, req, tag))) = self.l2_pending.peek() {
            if ready > now {
                break;
            }
            self.l2_pending.pop();
            self.next_id += 1;
            if net
                .inject(Packet::reply(self.next_id, NodeId(slice), NodeId(req), tag))
                .is_ok()
            {
                offered += 1;
            }
        }

        // 4. Issue requests and coherence.
        for a in 0..self.apps.len() {
            if self.apps[a].finished() {
                continue;
            }
            self.apps[a].advance_phase();
            let phase = *self.apps[a].phase();
            let n_cores = self.apps[a].cores.len();
            for c in 0..n_cores {
                // Coherence (open loop).
                if phase.coherence_per_kcycle > 0.0
                    && self.rng.random_f64() < phase.coherence_per_kcycle / 1000.0
                {
                    let src = self.apps[a].cores[c].node;
                    let peer = self.random_peer(a, c);
                    self.next_id += 1;
                    if net
                        .inject(Packet::coherence(self.next_id, src, peer, 0))
                        .is_ok()
                    {
                        offered += 1;
                    }
                    self.apps[a].epoch.coherence_sent += 1;
                }
                // Memory requests up to the phase's MLP.
                for s in 0..(phase.mlp as usize).min(self.apps[a].cores[c].slots.len()) {
                    let ready = match self.apps[a].cores[c].slots[s] {
                        SlotState::Ready { at } => at <= now,
                        SlotState::Waiting => false,
                    };
                    if !ready {
                        continue;
                    }
                    let src = self.apps[a].cores[c].node;
                    let to_mc = self.rng.random_f64() < phase.mc_fraction;
                    let dst = if to_mc {
                        self.pick_mc(a)
                    } else {
                        self.random_peer(a, c)
                    };
                    self.next_tag += 1;
                    self.next_id += 1;
                    let tag = self.next_tag;
                    if net
                        .inject(Packet::request(self.next_id, src, dst, tag))
                        .is_ok()
                    {
                        offered += 1;
                        self.apps[a].cores[c].slots[s] = SlotState::Waiting;
                        self.tag_slot.insert(tag, (a, c, s));
                        self.apps[a].epoch.requests += 1;
                        if to_mc {
                            self.apps[a].epoch.mc_requests += 1;
                        }
                    }
                }
            }
        }

        // 5. Injection-queue sampling.
        if now.is_multiple_of(64) {
            for a in 0..self.apps.len() {
                let mut sum = 0;
                for c in &self.apps[a].cores {
                    sum += net.ni_queue_len(c.node) as u64;
                }
                for k in 0..self.apps[a].mcs.len() {
                    sum += net.ni_queue_len(self.apps[a].mcs[k]) as u64;
                }
                self.apps[a].epoch.inj_queue_sum += sum;
                self.apps[a].epoch.inj_queue_samples += 1;
            }
        }
        offered
    }

    fn pick_mc(&mut self, a: usize) -> NodeId {
        // Addresses interleave across the region's MCs (plus any borrowed
        // ones), the usual page-interleaved MC mapping.
        let app = &self.apps[a];
        let n = app.mcs.len() + app.extra_mcs.len();
        if n == 0 {
            return app.mc;
        }
        let k = self.rng.random_below(n);
        if k < app.mcs.len() {
            app.mcs[k]
        } else {
            app.extra_mcs[k - app.mcs.len()]
        }
    }

    fn random_peer(&mut self, a: usize, c: usize) -> NodeId {
        let n = self.apps[a].cores.len();
        if n <= 1 {
            return self.apps[a].cores[c].node;
        }
        loop {
            let k = self.rng.random_below(n);
            if k != c {
                return self.apps[a].cores[k].node;
            }
        }
    }

    /// Epoch boundary: harvests the network's epoch report, builds one
    /// [`RegionTelemetry`] per region (state attributes + Eq.-2 reward
    /// inputs), and resets the per-epoch counters.
    pub fn epoch_telemetry(
        &mut self,
        net: &mut Network,
        layout: &ChipLayout,
        model: &EnergyModel,
    ) -> (EpochReport, Vec<RegionTelemetry>) {
        let fwd: Vec<u64> = net.router_forwarded_epoch().to_vec();
        let occ: Vec<u64> = net.router_occupancy_epoch().to_vec();
        let report = net.take_epoch();
        let cycles = report.static_cycles.cycles.max(1);
        let total_fwd: u64 = fwd.iter().sum::<u64>().max(1);
        let energy = model.energy(&report);
        let window_s = cycles as f64 * 1e-9;
        let total_active: f64 = net
            .spec()
            .routers
            .iter()
            .filter(|r| r.active)
            .count()
            .max(1) as f64;
        let cfg = net.config().clone();

        let mut out = Vec::with_capacity(self.apps.len());
        for app in self.apps.iter_mut() {
            let rect = layout.regions[app.region_idx].rect;
            let region_routers: Vec<usize> =
                rect.iter().map(|c| layout.grid.router(c).index()).collect();
            let r_fwd: u64 = region_routers.iter().map(|&r| fwd[r]).sum();
            let r_occ: u64 = region_routers.iter().map(|&r| occ[r]).sum();
            let n_routers = region_routers.len() as f64;
            let active_routers = region_routers
                .iter()
                .filter(|&&r| net.spec().routers[r].active)
                .count() as f64;

            let dyn_share = r_fwd as f64 / total_fwd as f64;
            // Static power follows the powered (non-gated) routers, so a
            // cmesh region's reward credit reflects its actual gating.
            let static_share = active_routers.max(1.0) / total_active;
            let power_w =
                (energy.dynamic_j * dyn_share + energy.static_j * static_share) / window_s;

            let capacity = n_routers * 5.0 * cfg.total_vcs() as f64 * cfg.vc_depth as f64;
            let e = app.epoch;
            let obs = Observation {
                l1d_misses: e.requests as f64,
                l1i_misses: e.l1i,
                l2_misses: e.mc_requests as f64,
                retired_instructions: e.insts,
                coherence_packets: (e.coherence_sent + e.coherence_delivered) as f64,
                data_packets: e.data_delivered as f64,
                buffer_utilization: r_occ as f64 / (cycles as f64 * capacity),
                injection_utilization: if e.inj_queue_samples == 0 {
                    0.0
                } else {
                    (e.inj_queue_sum as f64 / e.inj_queue_samples as f64) / (n_routers * 4.0)
                },
                router_throughput: r_fwd as f64 / (n_routers * cycles as f64),
                // current_topology / columns / rows are overwritten by the
                // controller, which knows the configured state.
                current_topology: 0.0,
                columns: rect.w as f64,
                rows: rect.h as f64,
            };
            out.push(RegionTelemetry {
                obs,
                power_w,
                network_latency: e.avg_network_latency(),
                queuing_latency: e.avg_queuing_latency(),
            });
            app.epoch = EpochCounters::default();
        }
        (report, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_topology::prelude::*;

    fn setup(gpu: bool) -> (ChipLayout, Network, Workload) {
        setup_with(gpu, if gpu { "KM" } else { "CA" })
    }

    fn setup_with(gpu: bool, name: &str) -> (ChipLayout, Network, Workload) {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), gpu);
        let cfg = SimConfig::baseline();
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let net = Network::new(spec, cfg).unwrap();
        let profile = crate::profiles::by_name(name).unwrap();
        let wl = Workload::new(&layout, &[profile], 7);
        (layout, net, wl)
    }

    #[test]
    fn closed_loop_round_trips_complete() {
        let (_l, mut net, mut wl) = setup(false);
        for _ in 0..5000 {
            wl.tick(&mut net);
            net.step();
        }
        let app = &wl.apps[0];
        assert!(app.epoch.requests > 0, "cores must issue requests");
        assert!(app.epoch.replies > 0, "round trips must complete");
        assert!(app.epoch.mc_requests > 0, "some requests hit the MC");
        assert!(app.epoch.mc_requests < app.epoch.requests, "some hit L2");
        assert!(app.total_insts > 0.0);
    }

    #[test]
    fn gpu_profile_generates_more_traffic() {
        // Compare a typical GPU app against a typical (compute-bound) CPU
        // app; the most memory-bound CPU app (CA) intentionally approaches
        // GPU intensity, so it is not the comparator here.
        let run = |gpu: bool, name: &str| -> u64 {
            let (_l, mut net, mut wl) = setup_with(gpu, name);
            for _ in 0..5000 {
                wl.tick(&mut net);
                net.step();
            }
            wl.apps[0].epoch.requests
        };
        let cpu = run(false, "BS");
        let gpu = run(true, "KM");
        assert!(
            gpu > cpu * 2,
            "GPU ({gpu}) must out-inject CPU ({cpu}) substantially"
        );
    }

    #[test]
    fn mc_injection_port_is_the_gpu_bottleneck() {
        // The paper's tree motivation (Sec. II-B3): reply traffic congests
        // at the MC's injection port. The MC source queue must back up
        // under a reply-heavy GPU app.
        let (_l, mut net, mut wl) = setup(true);
        let mc = wl.apps[0].mc;
        for _ in 0..5000 {
            wl.tick(&mut net);
            net.step();
        }
        assert!(
            net.ni_queue_len(mc) > 4,
            "MC queue {} should back up",
            net.ni_queue_len(mc)
        );
    }

    #[test]
    fn app_finishes_and_execution_time_reported() {
        let (_l, mut net, mut wl) = setup(false);
        // Shrink the target so the test completes quickly.
        wl.apps[0].target_insts = 3_000.0;
        let mut cycles = 0u64;
        while !wl.finished() && cycles < 200_000 {
            wl.tick(&mut net);
            net.step();
            cycles += 1;
        }
        assert!(wl.finished(), "app must reach its instruction target");
        let t = wl.execution_time().unwrap();
        assert!(t > 0 && t <= cycles);
    }

    #[test]
    fn slower_network_slows_execution() {
        // Same app on a mesh vs a mesh whose injection is hobbled by a
        // stalled router: execution takes longer.
        let time_with = |stall: bool| -> u64 {
            let (_l, mut net, mut wl) = setup(false);
            wl.apps[0].target_insts = 2_000.0;
            if stall {
                // Periodically stall the central routers.
                for r in [5u16, 6, 9, 10] {
                    net.begin_router_config(adaptnoc_sim::ids::RouterId(r), 30_000);
                }
            }
            let mut cycles = 0;
            while !wl.finished() && cycles < 400_000 {
                wl.tick(&mut net);
                net.step();
                cycles += 1;
            }
            wl.execution_time().unwrap_or(cycles)
        };
        let fast = time_with(false);
        let slow = time_with(true);
        assert!(
            slow > fast,
            "stalled network ({slow}) must be slower than clean ({fast})"
        );
    }

    #[test]
    fn telemetry_populates_state_attributes() {
        let (layout, mut net, mut wl) = setup(true);
        let model = EnergyModel::new(net.config());
        for _ in 0..3000 {
            wl.tick(&mut net);
            net.step();
        }
        let (report, telemetry) = wl.epoch_telemetry(&mut net, &layout, &model);
        assert_eq!(telemetry.len(), 1);
        let t = &telemetry[0];
        assert!(t.obs.l1d_misses > 0.0);
        assert!(t.obs.l2_misses > 0.0);
        assert!(t.obs.data_packets > 0.0);
        assert!(t.obs.retired_instructions > 0.0);
        assert!(t.obs.buffer_utilization > 0.0);
        assert!(t.obs.router_throughput > 0.0);
        assert!(t.power_w > 0.0);
        assert!(t.network_latency > 0.0);
        assert!(report.stats.packets > 0);
        // Counters reset after harvest.
        assert_eq!(wl.apps[0].epoch.requests, 0);
    }

    #[test]
    fn shared_mc_receives_requests() {
        let layout = ChipLayout::paper_mixed();
        let cfg = SimConfig::baseline();
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let mut net = Network::new(spec, cfg).unwrap();
        let profiles = vec![
            crate::profiles::by_name("CA").unwrap(),
            crate::profiles::by_name("KM").unwrap(),
            crate::profiles::by_name("BP").unwrap(),
        ];
        let mut wl = Workload::new(&layout, &profiles, 3);
        // App 0 borrows app 1's MC.
        let shared = layout.regions[1].mc;
        wl.add_shared_mc(0, shared);
        for _ in 0..4000 {
            wl.tick(&mut net);
            net.step();
        }
        assert!(wl.apps[0].epoch.replies > 0);
    }

    #[test]
    fn phases_cycle() {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profile = crate::profiles::by_name("X264").unwrap();
        let wl = Workload::new(&layout, std::slice::from_ref(&profile), 1);
        let mut app = wl.apps[0].clone();
        let total: u64 = profile.phases.iter().map(|p| p.duration).sum();
        for _ in 0..total {
            app.advance_phase();
        }
        assert_eq!(app.phase, 0, "phases must wrap around");
    }
}

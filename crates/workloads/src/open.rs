//! The open-system traffic engine.
//!
//! Unlike the closed-loop [`crate::engine::Workload`] (where cores wait
//! for replies, so injection self-throttles under congestion), an
//! open-loop source generates packets from an *external* arrival process
//! that does not care whether the network keeps up. Packets queue without
//! bound at their source NI, so offered load and accepted throughput
//! diverge past saturation and tail latency blows up — the latency–
//! throughput curves, saturation knees, and overload behaviour that
//! closed-loop workloads structurally cannot measure.
//!
//! The engine is seeded and deterministic: the same
//! [`TrafficSpec`]/seed/cycle count always generates the same packet
//! stream, which is what makes scenario files replayable and campaign
//! output byte-identical across thread counts.
//!
//! Accounting follows the open-system convention: *offered* counts every
//! generated packet (it enters the unbounded NI source queue immediately,
//! stamped with its creation cycle, so queueing delay is part of total
//! latency); *accepted* is what the network delivers. The gap between the
//! two, plus the source-queue depth trend, is the saturation signal.

use crate::Injector;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::rng::Rng;
use adaptnoc_topology::geom::{Coord, Grid, Rect};

/// The arrival process generating packets at each source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// At most one packet per cycle per source, probability = rate
    /// (plus `floor(rate)` guaranteed packets for overload rates).
    Bernoulli,
    /// Poisson arrivals: the per-cycle packet count is Poisson-distributed
    /// with mean = rate, so bursts of several packets in one cycle occur
    /// naturally.
    Poisson,
    /// Markov-modulated Poisson process: a two-state (Off/On) chain
    /// shared by all sources of the engine modulates the Poisson rate.
    /// In the On state the rate is multiplied by `burst`; transitions
    /// happen per cycle with probabilities `p_on` (Off→On) and `p_off`
    /// (On→Off), giving mean burst length `1/p_off` cycles.
    Mmpp {
        /// Rate multiplier while the chain is On.
        burst: f64,
        /// Per-cycle Off→On transition probability.
        p_on: f64,
        /// Per-cycle On→Off transition probability.
        p_off: f64,
    },
}

/// How destinations are drawn for generated packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DestPattern {
    /// Uniform random over the region (excluding the source).
    Uniform,
    /// Zipf-skewed popularity with exponent `s`: the region's nodes are
    /// ranked in index order and node at rank `k` (1-based) is chosen
    /// with probability proportional to `1 / k^s`. `s = 0` is uniform;
    /// larger `s` concentrates traffic on a few popular destinations.
    Zipf {
        /// Skew exponent (>= 0).
        s: f64,
    },
    /// All traffic to one node.
    Hotspot(NodeId),
    /// Uniform over a (usually small) hot sub-rectangle — a "hotspot
    /// storm" aimed at a region rather than a single tile.
    HotspotRegion(Rect),
    /// `(x, y) -> (y, x)` within the region.
    Transpose,
    /// Random adjacent tile inside the region.
    Neighbor,
}

/// Time-varying modulation of the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateShape {
    /// The base rate, unchanged.
    Constant,
    /// Linear ramp from the base rate to `rate` over `over` cycles
    /// (then holds at `rate`).
    RampTo {
        /// Target rate at the end of the ramp.
        rate: f64,
        /// Ramp duration in cycles.
        over: u64,
    },
    /// Sinusoidal modulation: `rate * (1 + amplitude * sin(2πt/period))`,
    /// a compressed diurnal load curve.
    Diurnal {
        /// Relative swing (0.5 = ±50% of the base rate).
        amplitude: f64,
        /// Full period in cycles.
        period: u64,
    },
    /// Periodic bursts: rate is multiplied by `factor` for the first
    /// `len` cycles of every `every`-cycle interval.
    Burst {
        /// Rate multiplier during the burst window.
        factor: f64,
        /// Interval between burst starts, cycles.
        every: u64,
        /// Burst length, cycles.
        len: u64,
    },
}

/// A complete open-loop traffic description: what arrives, how often,
/// where it goes, and how that changes over time. Shared between the
/// engine and the scenario DSL's AST.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Base injection rate, packets per node per cycle.
    pub rate: f64,
    /// The arrival process.
    pub arrival: Arrival,
    /// The destination pattern.
    pub dest: DestPattern,
    /// Time-varying rate modulation.
    pub shape: RateShape,
}

impl TrafficSpec {
    /// A plain uniform-random Bernoulli source at `rate` — the default
    /// everything else is a variation of.
    pub fn uniform(rate: f64) -> Self {
        TrafficSpec {
            rate,
            arrival: Arrival::Bernoulli,
            dest: DestPattern::Uniform,
            shape: RateShape::Constant,
        }
    }
}

/// Cumulative offered/accepted accounting kept by an [`OpenLoopEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Packets generated (entered a source queue).
    pub offered: u64,
    /// Cycles ticked.
    pub cycles: u64,
    /// Largest source-queue depth ever sampled.
    pub max_source_queue: usize,
}

impl OpenStats {
    /// Mean offered load in packets per node per cycle.
    pub fn offered_rate(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.offered as f64 / (self.cycles as f64 * nodes as f64)
        }
    }
}

/// A seeded, deterministic open-loop traffic source over a region.
///
/// ```
/// use adaptnoc_workloads::open::{OpenLoopEngine, TrafficSpec};
/// use adaptnoc_workloads::Injector;
/// use adaptnoc_topology::prelude::*;
/// use adaptnoc_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = Grid::new(4, 4);
/// let spec = mesh_chip(grid, &SimConfig::baseline())?;
/// let mut net = Network::new(spec, SimConfig::baseline())?;
/// let mut eng = OpenLoopEngine::new(grid, Rect::new(0, 0, 4, 4),
///     TrafficSpec::uniform(0.1), 42);
/// for _ in 0..1000 {
///     eng.tick(&mut net);
///     net.step();
/// }
/// assert!(eng.stats().offered > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OpenLoopEngine {
    grid: Grid,
    rect: Rect,
    spec: TrafficSpec,
    /// Fraction of generated packets that are multi-flit replies.
    pub data_fraction: f64,
    nodes: Vec<NodeId>,
    hot_nodes: Vec<NodeId>,
    zipf_cdf: Vec<f64>,
    mmpp_on: bool,
    elapsed: u64,
    next_id: u64,
    rng: Rng,
    stats: OpenStats,
}

impl OpenLoopEngine {
    /// Creates an engine driving `rect` of `grid` with `spec`.
    pub fn new(grid: Grid, rect: Rect, spec: TrafficSpec, seed: u64) -> Self {
        let mut eng = OpenLoopEngine {
            grid,
            rect,
            spec: TrafficSpec::uniform(0.0),
            data_fraction: 0.4,
            nodes: rect.iter().map(|c| grid.node(c)).collect(),
            hot_nodes: Vec::new(),
            zipf_cdf: Vec::new(),
            mmpp_on: false,
            elapsed: 0,
            next_id: 0,
            rng: Rng::seed_from_u64(seed),
            stats: OpenStats::default(),
        };
        eng.set_spec(spec);
        eng
    }

    /// The driven region.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The active traffic spec.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Cumulative offered/accepted accounting.
    pub fn stats(&self) -> OpenStats {
        self.stats
    }

    /// Number of source nodes driven.
    pub fn sources(&self) -> usize {
        self.nodes.len()
    }

    /// Switches to a new traffic phase. Ramp/diurnal/burst clocks restart
    /// at the switch (phase time is relative to the phase start), and the
    /// derived destination tables are rebuilt.
    pub fn set_spec(&mut self, spec: TrafficSpec) {
        self.spec = spec;
        self.elapsed = 0;
        self.zipf_cdf.clear();
        self.hot_nodes.clear();
        match spec.dest {
            DestPattern::Zipf { s } => {
                let mut acc = 0.0;
                for k in 1..=self.nodes.len() {
                    acc += 1.0 / (k as f64).powf(s.max(0.0));
                    self.zipf_cdf.push(acc);
                }
                for w in self.zipf_cdf.iter_mut() {
                    *w /= acc;
                }
            }
            DestPattern::HotspotRegion(hot) => {
                self.hot_nodes = hot.iter().map(|c| self.grid.node(c)).collect();
            }
            _ => {}
        }
    }

    /// The effective per-source rate this cycle: base rate, shaped by
    /// the phase clock, modulated by the MMPP chain state.
    fn current_rate(&mut self) -> f64 {
        let base = self.spec.rate;
        let t = self.elapsed;
        let shaped = match self.spec.shape {
            RateShape::Constant => base,
            RateShape::RampTo { rate, over } => {
                if over == 0 || t >= over {
                    rate
                } else {
                    base + (rate - base) * (t as f64 / over as f64)
                }
            }
            RateShape::Diurnal { amplitude, period } => {
                if period == 0 {
                    base
                } else {
                    let phase = (t % period) as f64 / period as f64;
                    base * (1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin())
                }
            }
            RateShape::Burst { factor, every, len } => {
                if every > 0 && t % every < len {
                    base * factor
                } else {
                    base
                }
            }
        };
        let modulated = match self.spec.arrival {
            Arrival::Mmpp { burst, p_on, p_off } => {
                if self.mmpp_on {
                    if self.rng.random_f64() < p_off {
                        self.mmpp_on = false;
                    }
                } else if self.rng.random_f64() < p_on {
                    self.mmpp_on = true;
                }
                if self.mmpp_on {
                    shaped * burst
                } else {
                    shaped
                }
            }
            _ => shaped,
        };
        modulated.max(0.0)
    }

    /// Packets to generate at one source this cycle for rate `r`.
    fn draw_count(&mut self, r: f64) -> u64 {
        match self.spec.arrival {
            Arrival::Bernoulli => {
                let whole = r as u64;
                let frac = r - whole as f64;
                whole + u64::from(frac > 0.0 && self.rng.random_f64() < frac)
            }
            Arrival::Poisson | Arrival::Mmpp { .. } => {
                // Knuth's product-of-uniforms sampler; fine for the
                // per-node-per-cycle rates (< ~10) a NoC sweep uses.
                let l = (-r).exp();
                let mut k = 0u64;
                let mut p = 1.0;
                loop {
                    p *= self.rng.random_f64();
                    if p <= l {
                        return k;
                    }
                    k += 1;
                }
            }
        }
    }

    fn destination(&mut self, src: Coord) -> NodeId {
        match self.spec.dest {
            DestPattern::Uniform => loop {
                let d = self.nodes[self.rng.random_below(self.nodes.len())];
                if d != self.grid.node(src) {
                    return d;
                }
            },
            DestPattern::Zipf { .. } => {
                let src_n = self.grid.node(src);
                for _ in 0..32 {
                    let u = self.rng.random_f64();
                    let k = self.zipf_cdf.partition_point(|&c| c < u);
                    let d = self.nodes[k.min(self.nodes.len() - 1)];
                    if d != src_n {
                        return d;
                    }
                }
                // Pathological skew aimed at the source itself: fall back
                // to the next node in rank order.
                self.nodes[(self.nodes.iter().position(|&n| n == src_n).unwrap_or(0) + 1)
                    % self.nodes.len()]
            }
            DestPattern::Hotspot(n) => n,
            DestPattern::HotspotRegion(_) => {
                self.hot_nodes[self.rng.random_below(self.hot_nodes.len())]
            }
            DestPattern::Transpose => {
                let rx = src.x - self.rect.x;
                let ry = src.y - self.rect.y;
                let tx = self.rect.x + (ry % self.rect.w);
                let ty = self.rect.y + (rx % self.rect.h);
                self.grid.node(Coord::new(tx, ty))
            }
            DestPattern::Neighbor => {
                let dirs = adaptnoc_sim::ids::Direction::ALL;
                for _ in 0..8 {
                    let d = dirs[self.rng.random_below(4)];
                    if let Some(n) = self.grid.neighbor(src, d) {
                        if self.rect.contains(n) {
                            return self.grid.node(n);
                        }
                    }
                }
                self.grid.node(src)
            }
        }
    }

    /// Sum of NI source-queue depths over the driven region; also folds
    /// the value into [`OpenStats::max_source_queue`].
    pub fn source_queue_depth(&mut self, net: &Network) -> usize {
        let mut sum = 0;
        for &n in &self.nodes {
            sum += net.ni_queue_len(n);
        }
        self.stats.max_source_queue = self.stats.max_source_queue.max(sum);
        sum
    }

    /// Generates this cycle's packets. Returns how many were offered.
    pub fn tick(&mut self, net: &mut Network) -> usize {
        let rate = self.current_rate();
        let mut offered = 0;
        for i in 0..self.nodes.len() {
            let count = self.draw_count(rate);
            for _ in 0..count {
                let src = self.nodes[i];
                let dst = self.destination(self.grid.node_coord(src));
                if dst == src {
                    continue;
                }
                self.next_id += 1;
                let pkt = if self.rng.random_f64() < self.data_fraction {
                    Packet::reply(self.next_id, src, dst, 0)
                } else {
                    Packet::request(self.next_id, src, dst, 0)
                };
                if net.inject(pkt).is_ok() {
                    offered += 1;
                }
            }
        }
        self.elapsed += 1;
        self.stats.offered += offered as u64;
        self.stats.cycles += 1;
        offered
    }
}

impl Injector for OpenLoopEngine {
    fn tick(&mut self, net: &mut Network) -> usize {
        OpenLoopEngine::tick(self, net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_topology::prelude::*;

    fn net() -> Network {
        let cfg = SimConfig::baseline();
        Network::new(mesh_chip(Grid::new(4, 4), &cfg).unwrap(), cfg).unwrap()
    }

    fn engine(spec: TrafficSpec, seed: u64) -> OpenLoopEngine {
        OpenLoopEngine::new(Grid::new(4, 4), Rect::new(0, 0, 4, 4), spec, seed)
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let mut eng = engine(
            TrafficSpec {
                arrival: Arrival::Poisson,
                ..TrafficSpec::uniform(0.3)
            },
            11,
        );
        let mut n = net();
        for _ in 0..2000 {
            eng.tick(&mut n);
            n.step();
        }
        let rate = eng.stats().offered_rate(16);
        assert!(
            (0.27..=0.33).contains(&rate),
            "poisson offered rate {rate} should track 0.3"
        );
    }

    #[test]
    fn poisson_bursts_exceed_one_per_cycle() {
        let mut eng = engine(
            TrafficSpec {
                arrival: Arrival::Poisson,
                ..TrafficSpec::uniform(0.5)
            },
            3,
        );
        let mut saw_burst = false;
        for _ in 0..2000 {
            if eng.draw_count(0.5) > 1 {
                saw_burst = true;
                break;
            }
        }
        assert!(saw_burst, "Poisson must occasionally batch arrivals");
    }

    #[test]
    fn mmpp_on_state_raises_offered_load() {
        let run = |arrival: Arrival| -> f64 {
            let mut eng = engine(
                TrafficSpec {
                    arrival,
                    ..TrafficSpec::uniform(0.05)
                },
                7,
            );
            let mut n = net();
            for _ in 0..4000 {
                eng.tick(&mut n);
                n.step();
            }
            eng.stats().offered_rate(16)
        };
        let flat = run(Arrival::Poisson);
        let bursty = run(Arrival::Mmpp {
            burst: 6.0,
            p_on: 0.01,
            p_off: 0.02,
        });
        assert!(
            bursty > flat * 1.5,
            "MMPP ({bursty}) must out-offer plain Poisson ({flat})"
        );
    }

    #[test]
    fn zipf_concentrates_on_popular_nodes() {
        let mut eng = engine(
            TrafficSpec {
                dest: DestPattern::Zipf { s: 1.5 },
                ..TrafficSpec::uniform(0.2)
            },
            5,
        );
        let mut n = net();
        for _ in 0..3000 {
            eng.tick(&mut n);
            n.step();
        }
        while n.in_flight() > 0 {
            n.step();
        }
        let mut per_dst = [0u64; 16];
        for d in n.drain_delivered() {
            per_dst[d.packet.dst.index()] += 1;
        }
        let total: u64 = per_dst.iter().sum();
        let top: u64 = per_dst[0].max(per_dst[1]);
        assert!(
            top as f64 > total as f64 * 0.2,
            "a top-ranked node should attract >20% of zipf(1.5) traffic"
        );
    }

    #[test]
    fn hotspot_region_storm_targets_the_rect() {
        let hot = Rect::new(2, 2, 2, 2);
        let mut eng = engine(
            TrafficSpec {
                dest: DestPattern::HotspotRegion(hot),
                ..TrafficSpec::uniform(0.1)
            },
            9,
        );
        let mut n = net();
        for _ in 0..1000 {
            eng.tick(&mut n);
            n.step();
        }
        while n.in_flight() > 0 {
            n.step();
        }
        let grid = Grid::new(4, 4);
        for d in n.drain_delivered() {
            assert!(hot.contains(grid.node_coord(d.packet.dst)));
        }
    }

    #[test]
    fn ramp_raises_rate_over_time() {
        let mut eng = engine(
            TrafficSpec {
                shape: RateShape::RampTo {
                    rate: 0.8,
                    over: 1000,
                },
                ..TrafficSpec::uniform(0.0)
            },
            13,
        );
        let early = {
            eng.elapsed = 100;
            eng.current_rate()
        };
        let late = {
            eng.elapsed = 900;
            eng.current_rate()
        };
        let after = {
            eng.elapsed = 5000;
            eng.current_rate()
        };
        assert!(early < late, "ramp must rise: {early} -> {late}");
        assert!((after - 0.8).abs() < 1e-12, "ramp holds at target");
    }

    #[test]
    fn burst_shape_multiplies_rate_in_window() {
        let mut eng = engine(
            TrafficSpec {
                shape: RateShape::Burst {
                    factor: 4.0,
                    every: 100,
                    len: 10,
                },
                ..TrafficSpec::uniform(0.1)
            },
            13,
        );
        eng.elapsed = 205; // inside the third burst window
        let hot = eng.current_rate();
        eng.elapsed = 250; // between bursts
        let cool = eng.current_rate();
        assert!((hot - 0.4).abs() < 1e-12);
        assert!((cool - 0.1).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_stream() {
        let run = || -> (u64, Vec<usize>) {
            let mut eng = engine(
                TrafficSpec {
                    arrival: Arrival::Poisson,
                    dest: DestPattern::Zipf { s: 1.0 },
                    ..TrafficSpec::uniform(0.25)
                },
                77,
            );
            let mut n = net();
            let mut per_cycle = Vec::new();
            for _ in 0..500 {
                per_cycle.push(eng.tick(&mut n));
                n.step();
            }
            (eng.stats().offered, per_cycle)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_backs_up_source_queues() {
        let mut eng = engine(TrafficSpec::uniform(0.9), 21);
        let mut n = net();
        for _ in 0..3000 {
            eng.tick(&mut n);
            n.step();
        }
        let depth = eng.source_queue_depth(&n);
        assert!(
            depth > 50,
            "0.9 pkts/node/cycle must exceed mesh capacity (queue {depth})"
        );
        assert!(eng.stats().max_source_queue >= depth);
    }

    #[test]
    fn phase_switch_rebuilds_destination_tables() {
        let mut eng = engine(TrafficSpec::uniform(0.2), 2);
        eng.set_spec(TrafficSpec {
            dest: DestPattern::Zipf { s: 1.0 },
            ..TrafficSpec::uniform(0.2)
        });
        assert_eq!(eng.zipf_cdf.len(), 16);
        assert!((eng.zipf_cdf.last().unwrap() - 1.0).abs() < 1e-12);
        eng.set_spec(TrafficSpec::uniform(0.2));
        assert!(eng.zipf_cdf.is_empty());
    }
}

//! Open-loop campaign equivalence: the scenario sweep's JSON output is
//! byte-identical across worker thread counts, and a single scenario
//! run is insensitive to the telemetry mode (Off / Sampled / Strict) —
//! the same property the sim crate's telemetry-equivalence harness pins
//! for the closed-loop engine.

use adaptnoc_bench::jsonrows::rows_json;
use adaptnoc_bench::prelude::*;
use adaptnoc_scenario::prelude::*;
use adaptnoc_sim::telemetry::TelemetryMode;

const SWEEP: &str = "grid 4 4; seed 4; warmup 1K; duration 4K; epoch 2K;\n\
                     region B 2 2 2 2;\n\
                     sweep load 0.05 to 0.2 step 0.05;\n\
                     t=0 uniform load sweep poisson;\n\
                     t=2K hotspot region B load 0.3 mmpp 3 0.05 0.2;";

#[test]
fn campaign_json_is_byte_identical_across_thread_counts() {
    let serial = scenario_sweep_par("eq", SWEEP, 1).unwrap();
    let baseline = rows_json(&serial).to_string_compact();
    for threads in [2, 4, 8] {
        let par = scenario_sweep_par("eq", SWEEP, threads).unwrap();
        assert_eq!(
            rows_json(&par).to_string_compact(),
            baseline,
            "{threads} threads must reproduce the serial bytes"
        );
    }
}

#[test]
fn scenario_runs_are_step_thread_count_neutral() {
    let plan = load_scenario(SWEEP).unwrap();
    let opts = |threads| RunOptions {
        load: Some(0.1),
        threads,
        ..Default::default()
    };
    let serial = run(&plan, &opts(1)).unwrap();
    for threads in [2usize, 4] {
        let par = run(&plan, &opts(threads)).unwrap();
        assert_eq!(
            serial, par,
            "region-parallel stepping at {threads} threads changed a scenario outcome"
        );
    }
    assert!(serial.delivered > 0);
}

#[test]
fn scenario_runs_are_telemetry_mode_neutral() {
    let plan = load_scenario(SWEEP).unwrap();
    let opts = |telemetry| RunOptions {
        load: Some(0.1),
        telemetry,
        ..Default::default()
    };
    let off = run(&plan, &opts(TelemetryMode::Off)).unwrap();
    let sampled = run(&plan, &opts(TelemetryMode::Sampled(64))).unwrap();
    let strict = run(&plan, &opts(TelemetryMode::Strict)).unwrap();
    assert_eq!(off, sampled, "sampled telemetry is observation-only");
    assert_eq!(off, strict, "strict telemetry is observation-only");
    assert!(off.delivered > 0);
}

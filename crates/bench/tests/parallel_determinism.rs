//! Parallel campaigns must be byte-identical to serial runs.
//!
//! Every campaign point derives its state from its own seed, so fanning
//! points across threads must not change a single byte of the JSON rows.
//! These tests render each campaign's rows with the same
//! `rows_json(..).to_string_pretty()` path `gen-figures` uses and compare
//! a serial run against a 4-thread run.

use adaptnoc_bench::jsonrows::rows_json;
use adaptnoc_bench::prelude::*;
use adaptnoc_core::prelude::{ChipLayout, TopologyPolicy};
use adaptnoc_topology::prelude::Rect;
use adaptnoc_workloads::prelude::by_name;

fn quick_rc() -> RunConfig {
    RunConfig {
        epoch_cycles: 3_000,
        epochs: 1,
        warmup_epochs: 1,
        ..Default::default()
    }
}

#[test]
fn fault_sweep_parallel_is_byte_identical() {
    let seeds = [1u64, 2, 3, 4, 5, 6];
    let serial = fault_sweep_par(&seeds, 1).unwrap();
    let par = fault_sweep_par(&seeds, 4).unwrap();
    assert_eq!(serial, par, "fault rows diverged under parallel execution");
    assert_eq!(
        rows_json(&serial).to_string_pretty(),
        rows_json(&par).to_string_pretty()
    );
}

#[test]
fn ablation_sweep_parallel_is_byte_identical() {
    let rc = quick_rc();
    let seeds = [7u64, 8];
    let serial = ablation_sweep(&seeds, &rc, 1).unwrap();
    let par = ablation_sweep(&seeds, &rc, 4).unwrap();
    assert_eq!(
        serial, par,
        "ablation rows diverged under parallel execution"
    );
    assert_eq!(
        rows_json(&serial).to_string_pretty(),
        rows_json(&par).to_string_pretty()
    );
}

/// The figure campaigns' shared primitive: the oracle's region x topology
/// evaluation grid must pick identical policies at any thread count
/// (tie-breaking included).
#[test]
fn oracle_policies_parallel_matches_serial() {
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
    let profiles = vec![by_name("BS").unwrap()];
    let rc = quick_rc();
    let serial = oracle_policies(&layout, &profiles, &rc).unwrap();
    let par = oracle_policies_par(&layout, &profiles, &rc, 4).unwrap();
    let kind = |p: &TopologyPolicy| match p {
        TopologyPolicy::Fixed(k) => *k,
        _ => unreachable!("oracle returns fixed policies"),
    };
    assert_eq!(serial.len(), par.len());
    for (s, p) in serial.iter().zip(&par) {
        assert_eq!(kind(s), kind(p), "oracle policy diverged");
    }
}

/// A full figure campaign (Fig. 16's size sweep, quick scale) fanned over
/// threads renders byte-identical JSON. The trained-policy cache is
/// cleared first so both runs train from the same fresh state.
#[test]
fn fig16_parallel_is_byte_identical() {
    std::fs::remove_file("results/policy.json").ok();
    let serial_scale = FigScale::quick();
    let serial = fig16(&serial_scale).unwrap();
    // Clear the cache again so the parallel run trains identically fresh
    // rather than reading the serialized policy back.
    std::fs::remove_file("results/policy.json").ok();
    let par_scale = FigScale {
        threads: 4,
        ..FigScale::quick()
    };
    let par = fig16(&par_scale).unwrap();
    let render = |rows: &[adaptnoc_bench::figs::SizeRow]| rows_json(rows).to_string_pretty();
    assert_eq!(
        render(&serial),
        render(&par),
        "fig16 rows diverged under parallel execution"
    );
}

//! Work-stealing parallel campaign runner.
//!
//! Every campaign in this crate is a grid of *independent* simulation
//! points (figure sweeps, ablations, fault scenarios, per-γ trainings):
//! each point constructs its own [`adaptnoc_sim::network::Network`] from a
//! per-point seed, so points share no mutable state and can run on any
//! thread. [`run_indexed`] fans the points over a scoped thread pool with
//! an atomic work-stealing cursor — threads that finish cheap points
//! immediately claim the next unclaimed index, so a few slow points do
//! not serialize the tail — and returns results **in index order**, which
//! keeps every campaign's JSON output byte-identical to a serial run.
//!
//! Two crash-tolerance layers build on it: [`run_indexed_isolated`]
//! catches per-point panics (with bounded retry), so one diverging point
//! salvages the rest of the campaign instead of sinking it; and
//! [`run_checkpointed`] journals each completed point to an append-only
//! JSON-lines file, so a killed sweep resumes from the completed points
//! and still produces byte-identical output.

use adaptnoc_sim::json::Value;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning.
///
/// A campaign point that panics while a sibling holds (or later takes)
/// one of the coordination locks must not sink the rest of the campaign:
/// the data behind these locks (result slots, the journal file handle) is
/// written atomically per point, so a poisoned lock carries no torn
/// state worth dying over. `catch_unwind` isolation upstream relies on
/// this — recovery here is what keeps one bad point from cascading.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Number of worker threads to use for campaigns.
///
/// Resolution order: explicit `threads` argument if non-zero, else the
/// `ADAPTNOC_THREADS` environment variable, else the host's available
/// parallelism. Always at least 1.
pub fn configured_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    if let Ok(v) = std::env::var("ADAPTNOC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// Scheduling is dynamic: each worker claims the next index from a shared
/// atomic cursor (work stealing by competition rather than per-thread
/// queues, which is optimal here because points vastly outnumber threads
/// and vary widely in cost). With `threads <= 1` — or a single point —
/// the closure runs inline on the caller's thread with zero overhead, so
/// serial semantics are the fast path, not a special case.
///
/// Determinism: `f` receives only the point index, and campaigns derive
/// the point's seed from that index, so the result vector is identical
/// regardless of thread count or claim order.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *lock_recovering(&slots[i]) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every index claimed exactly once")
        })
        .collect()
}

/// A campaign point that kept panicking through its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// The point's index.
    pub index: usize,
    /// Attempts made (always the full budget).
    pub attempts: u32,
    /// The final panic message.
    pub message: String,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_indexed`] with per-point panic isolation: a panicking point is
/// retried up to `max_attempts` times and then reported as a
/// [`PointFailure`], while every other point's result is salvaged. Results
/// are still in index order.
///
/// Retries make sense because campaign points construct all their own
/// state from the index — a panic from a transient cause (e.g. resource
/// exhaustion) may pass on a clean rebuild, while a deterministic bug
/// fails every attempt and is reported once.
pub fn run_indexed_isolated<T, F>(
    n: usize,
    threads: usize,
    max_attempts: u32,
    f: F,
) -> Vec<Result<T, PointFailure>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let max_attempts = max_attempts.max(1);
    run_indexed(n, threads, move |i| {
        let mut last = String::new();
        for _ in 0..max_attempts {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                Ok(v) => return Ok(v),
                Err(p) => last = panic_message(p.as_ref()),
            }
        }
        Err(PointFailure {
            index: i,
            attempts: max_attempts,
            message: last,
        })
    })
}

/// The state of a checkpointed campaign after
/// [`run_checkpointed_observed`] returns: either every point completed,
/// or a stop request interrupted it with some points still missing.
///
/// Interruption loses nothing: completed points are in the journal, and
/// re-running the same campaign against the same journal path finishes
/// only the missing indices and returns results byte-identical to an
/// uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialCampaign<T> {
    /// Per-index results; `None` for points the stop request preempted.
    pub results: Vec<Option<T>>,
}

impl<T> PartialCampaign<T> {
    /// Number of completed points.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// Whether every point completed.
    pub fn is_complete(&self) -> bool {
        self.results.iter().all(|r| r.is_some())
    }

    /// The full result vector, if the campaign completed.
    pub fn into_complete(self) -> Option<Vec<T>> {
        self.results.into_iter().collect()
    }
}

/// [`run_checkpointed`] generalized for supervision: the point function
/// returns `Option<T>` — `None` means "stopped" (a cancelled or
/// deadline-preempted point), which leaves a [`PartialCampaign`] hole
/// and journals nothing, so a later resume re-runs exactly that point —
/// and `observe(i, &result)` runs after each *freshly computed* point is
/// journaled, which is the hook the farm daemon uses to stream per-point
/// progress events to watching clients. Replayed points are not
/// re-observed.
///
/// # Errors
///
/// Returns the I/O error if the journal cannot be opened for appending;
/// individual write failures are swallowed (the campaign still
/// completes, it just loses crash tolerance for those points).
pub fn run_checkpointed_observed<T, F, E, D, O>(
    n: usize,
    threads: usize,
    path: &std::path::Path,
    encode: E,
    decode: D,
    observe: O,
    f: F,
) -> std::io::Result<PartialCampaign<T>>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
    E: Fn(&T) -> Value + Sync,
    D: Fn(&Value) -> Option<T>,
    O: Fn(usize, &T) + Sync,
{
    let mut done: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut torn_tail = false;
    if let Ok(text) = std::fs::read_to_string(path) {
        // A kill mid-write leaves a final line without its newline; new
        // records must not be appended onto it.
        torn_tail = !text.is_empty() && !text.ends_with('\n');
        for line in text.lines() {
            let Ok(entry) = adaptnoc_sim::json::parse(line.trim()) else {
                continue;
            };
            let Some(i) = entry.get("i").and_then(Value::as_u64) else {
                continue;
            };
            let Some(v) = entry.get("v") else { continue };
            if let Some(slot) = done.get_mut(i as usize) {
                if slot.is_none() {
                    *slot = decode(v);
                }
            }
        }
    }
    let todo: Vec<usize> = (0..n).filter(|&i| done[i].is_none()).collect();
    if !todo.is_empty() {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if torn_tail {
            writeln!(file)?;
        }
        let sink = Mutex::new(file);
        let fresh = run_indexed(todo.len(), threads, |k| {
            let i = todo[k];
            let Some(out) = f(i) else {
                return (i, None);
            };
            let line = Value::Object(vec![
                ("i".to_string(), Value::Number(i as f64)),
                ("v".to_string(), encode(&out)),
            ])
            .to_string_compact();
            {
                let mut file = lock_recovering(&sink);
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
            }
            observe(i, &out);
            (i, Some(out))
        });
        for (i, out) in fresh {
            done[i] = out;
        }
    }
    Ok(PartialCampaign { results: done })
}

/// [`run_indexed`] with an on-disk checkpoint journal, so a killed
/// campaign resumes from its completed points.
///
/// Each finished point is appended to `path` as one JSON line
/// `{"i": <index>, "v": <encode(result)>}` and flushed immediately.
/// On entry the journal is replayed: points that decode are skipped,
/// torn or unparseable lines (a mid-write kill) are ignored, and only the
/// remaining indices run. Because results are assembled in index order
/// from `decode`-faithful values, an interrupted-then-resumed campaign
/// returns exactly what an uninterrupted one does.
///
/// # Errors
///
/// Returns the I/O error if the journal cannot be opened for appending;
/// individual write failures are swallowed (the campaign still completes,
/// it just loses crash tolerance for those points).
pub fn run_checkpointed<T, F, E, D>(
    n: usize,
    threads: usize,
    path: &std::path::Path,
    encode: E,
    decode: D,
    f: F,
) -> std::io::Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    E: Fn(&T) -> Value + Sync,
    D: Fn(&Value) -> Option<T>,
{
    let partial =
        run_checkpointed_observed(n, threads, path, encode, decode, |_, _| {}, |i| Some(f(i)))?;
    Ok(partial
        .into_complete()
        .expect("the point function never stops, so every index completed or replayed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let f = |i: usize| i * i + 1;
        let serial = run_indexed(37, 1, f);
        let par = run_indexed(37, 4, f);
        assert_eq!(serial, par);
        assert_eq!(serial[5], 26);
    }

    #[test]
    fn zero_points_is_empty() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let out = run_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn configured_threads_prefers_explicit() {
        assert_eq!(configured_threads(7), 7);
        assert!(configured_threads(0) >= 1);
    }

    #[test]
    fn isolated_salvages_other_points_when_one_keeps_panicking() {
        let out = run_indexed_isolated(5, 2, 2, |i| {
            assert!(i != 2, "point 2 is deterministically broken");
            i * 10
        });
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                let e = r.as_ref().expect_err("point 2 must fail");
                assert_eq!(e.attempts, 2);
                assert!(e.message.contains("deterministically broken"), "{e}");
            } else {
                assert_eq!(*r.as_ref().expect("healthy point"), i * 10);
            }
        }
    }

    #[test]
    fn isolated_retry_rescues_a_transient_panic() {
        let tries = AtomicUsize::new(0);
        let out = run_indexed_isolated(1, 1, 3, |i| {
            if tries.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            i + 99
        });
        assert_eq!(out[0].as_ref().copied(), Ok(99));
        assert_eq!(tries.load(Ordering::Relaxed), 2);
    }

    fn scratch_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("adaptnoc-ckpt-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn observed_campaign_stops_early_and_resumes_with_fresh_observations() {
        let path = scratch_journal("observed");
        let _ = std::fs::remove_file(&path);
        let encode = |v: &usize| Value::Number(*v as f64);
        let decode = |v: &Value| v.as_u64().map(|n| n as usize);
        let seen = Mutex::new(Vec::new());
        let ran = AtomicUsize::new(0);

        // Stop after two points have completed: the rest stay pending.
        let partial = run_checkpointed_observed(
            5,
            1,
            &path,
            encode,
            decode,
            |i, v| lock_recovering(&seen).push((i, *v)),
            |i| {
                if ran.fetch_add(1, Ordering::Relaxed) >= 2 {
                    return None;
                }
                Some(i * 7)
            },
        )
        .unwrap();
        assert!(!partial.is_complete());
        assert_eq!(partial.completed(), 2);
        assert_eq!(*lock_recovering(&seen), vec![(0, 0), (1, 7)]);

        // A resume against the same journal observes only the points it
        // freshly computes and ends complete.
        lock_recovering(&seen).clear();
        let resumed = run_checkpointed_observed(
            5,
            1,
            &path,
            encode,
            decode,
            |i, v| lock_recovering(&seen).push((i, *v)),
            |i| Some(i * 7),
        )
        .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(
            resumed.into_complete().unwrap(),
            vec![0, 7, 14, 21, 28],
            "resume matches an uninterrupted campaign"
        );
        assert_eq!(
            *lock_recovering(&seen),
            vec![(2, 14), (3, 21), (4, 28)],
            "replayed points are not re-observed"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_journal_resumes_from_completed_points() {
        let path = scratch_journal("resume");
        let _ = std::fs::remove_file(&path);
        let encode = |v: &usize| Value::Number(*v as f64);
        let decode = |v: &Value| v.as_u64().map(|n| n as usize);
        let calls = AtomicUsize::new(0);
        let f = |i: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * i
        };

        let full = run_checkpointed(6, 1, &path, encode, decode, f).unwrap();
        assert_eq!(full, vec![0, 1, 4, 9, 16, 25]);
        assert_eq!(calls.load(Ordering::Relaxed), 6);

        // Simulate a kill after three points: keep the first three journal
        // lines and append a torn line (a mid-write crash artifact).
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n{{\"i\":5,\"v\"", kept.join("\n"))).unwrap();

        calls.store(0, Ordering::Relaxed);
        let resumed = run_checkpointed(6, 1, &path, encode, decode, f).unwrap();
        assert_eq!(resumed, full, "resume reproduces the uninterrupted run");
        assert_eq!(
            calls.load(Ordering::Relaxed),
            3,
            "only the missing points re-ran"
        );

        // A fully journaled campaign re-runs nothing at all.
        calls.store(0, Ordering::Relaxed);
        let replayed = run_checkpointed(6, 4, &path, encode, decode, f).unwrap();
        assert_eq!(replayed, full);
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_file(&path);
    }
}

//! Work-stealing parallel campaign runner.
//!
//! Every campaign in this crate is a grid of *independent* simulation
//! points (figure sweeps, ablations, fault scenarios, per-γ trainings):
//! each point constructs its own [`adaptnoc_sim::network::Network`] from a
//! per-point seed, so points share no mutable state and can run on any
//! thread. [`run_indexed`] fans the points over a scoped thread pool with
//! an atomic work-stealing cursor — threads that finish cheap points
//! immediately claim the next unclaimed index, so a few slow points do
//! not serialize the tail — and returns results **in index order**, which
//! keeps every campaign's JSON output byte-identical to a serial run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for campaigns.
///
/// Resolution order: explicit `threads` argument if non-zero, else the
/// `ADAPTNOC_THREADS` environment variable, else the host's available
/// parallelism. Always at least 1.
pub fn configured_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    if let Ok(v) = std::env::var("ADAPTNOC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// Scheduling is dynamic: each worker claims the next index from a shared
/// atomic cursor (work stealing by competition rather than per-thread
/// queues, which is optimal here because points vastly outnumber threads
/// and vary widely in cost). With `threads <= 1` — or a single point —
/// the closure runs inline on the caller's thread with zero overhead, so
/// serial semantics are the fast path, not a special case.
///
/// Determinism: `f` receives only the point index, and campaigns derive
/// the point's seed from that index, so the result vector is identical
/// regardless of thread count or claim order.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let f = |i: usize| i * i + 1;
        let serial = run_indexed(37, 1, f);
        let par = run_indexed(37, 4, f);
        assert_eq!(serial, par);
        assert_eq!(serial[5], 26);
    }

    #[test]
    fn zero_points_is_empty() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let out = run_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn configured_threads_prefers_explicit() {
        assert_eq!(configured_threads(7), 7);
        assert!(configured_threads(0) >= 1);
    }
}

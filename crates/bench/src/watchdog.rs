//! The harness watchdog: turns a silently wedged campaign point into a
//! prompt, diagnosable failure.
//!
//! Campaign points run unattended for millions of cycles, so the harness
//! wraps two independent tripwires around each run:
//!
//! * the simulator's cycle-window [`Watchdog`] (no deliveries / no flit
//!   motion within a window of simulated cycles), and
//! * a wall-clock budget, for wedges the cycle watchdog cannot see —
//!   e.g. a run that still makes token progress but will never finish
//!   inside any reasonable deadline.
//!
//! Both used to be hard-coded; they now resolve from the environment:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `ADAPTNOC_WATCHDOG_SECS` | wall-clock budget per run, seconds (`0`/`off` disables) | `600` |
//! | `ADAPTNOC_WATCHDOG_WINDOW` | stall window, simulated cycles | `100000` |
//!
//! On a trip the watchdog records a structured `harness.watchdog`
//! telemetry event (when the network has telemetry attached) carrying
//! the stall kind and diagnosis, so supervised runs surface the fire in
//! their metric stream instead of only on stderr; the harness then
//! panics with the full report, which the crash-tolerant campaign
//! runners ([`crate::parallel::run_indexed_isolated`]) catch and contain
//! to the one point.

use adaptnoc_sim::health::{StallReport, Watchdog, WatchdogConfig};
use adaptnoc_sim::network::Network;
use std::fmt;
use std::time::{Duration, Instant};

/// Default wall-clock budget for one harness run, seconds.
pub const DEFAULT_WALL_SECS: u64 = 600;

/// Default cycle-window for the embedded simulator watchdog.
pub const DEFAULT_WINDOW_CYCLES: u64 = 100_000;

/// Why the harness watchdog tripped.
#[derive(Debug, Clone)]
pub enum HarnessStall {
    /// The simulator watchdog detected a deadlock/livelock/starvation
    /// stall; the report says where progress stopped.
    Sim(Box<StallReport>),
    /// The run exceeded its wall-clock budget.
    WallClock {
        /// The budget that was exceeded.
        budget: Duration,
        /// Simulated cycles completed when the budget ran out.
        cycles: u64,
    },
}

impl fmt::Display for HarnessStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessStall::Sim(report) => write!(f, "simulator stall:\n{report}"),
            HarnessStall::WallClock { budget, cycles } => write!(
                f,
                "wall-clock budget exceeded: {budget:?} elapsed after {cycles} simulated cycles \
                 (raise ADAPTNOC_WATCHDOG_SECS if the run is legitimately this slow)"
            ),
        }
    }
}

impl HarnessStall {
    /// Short machine-readable kind tag used in the telemetry event.
    pub fn kind(&self) -> &'static str {
        match self {
            HarnessStall::Sim(_) => "sim_stall",
            HarnessStall::WallClock { .. } => "wall_clock",
        }
    }
}

/// A combined cycle-window + wall-clock watchdog for one harness run.
#[derive(Debug)]
pub struct HarnessWatchdog {
    inner: Watchdog,
    wall_budget: Option<Duration>,
    started: Instant,
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let s = raw.trim().to_ascii_lowercase();
    if s == "off" || s == "none" {
        return Some(0);
    }
    s.parse().ok()
}

impl HarnessWatchdog {
    /// A watchdog with an explicit wall-clock budget (`None` disables the
    /// wall-clock tripwire) and simulator stall window.
    pub fn with(wall_secs: Option<u64>, window_cycles: u64) -> Self {
        HarnessWatchdog {
            inner: Watchdog::new(WatchdogConfig {
                window: window_cycles.max(1),
                ..Default::default()
            }),
            wall_budget: wall_secs.filter(|&s| s > 0).map(Duration::from_secs),
            started: Instant::now(),
        }
    }

    /// The environment-configured watchdog: `ADAPTNOC_WATCHDOG_SECS`
    /// (default [`DEFAULT_WALL_SECS`]; `0`/`off` disables the wall-clock
    /// bound) and `ADAPTNOC_WATCHDOG_WINDOW` (default
    /// [`DEFAULT_WINDOW_CYCLES`]).
    pub fn from_env() -> Self {
        let secs = env_u64("ADAPTNOC_WATCHDOG_SECS").unwrap_or(DEFAULT_WALL_SECS);
        let window = match env_u64("ADAPTNOC_WATCHDOG_WINDOW") {
            Some(0) | None => DEFAULT_WINDOW_CYCLES,
            Some(w) => w,
        };
        Self::with(Some(secs), window)
    }

    /// Observes one simulator step. On a trip, records the structured
    /// `harness.watchdog` telemetry event (when telemetry is attached)
    /// and returns the stall; the caller decides whether to panic.
    pub fn observe(&mut self, net: &mut Network) -> Option<HarnessStall> {
        let stall = if let Some(report) = self.inner.observe(net) {
            Some(HarnessStall::Sim(Box::new(report)))
        } else if let Some(budget) = self.wall_budget {
            // Wall-clock checks ride the simulator watchdog's sampling
            // cadence implicitly: an Instant read per cycle is cheap
            // enough not to need one.
            (self.started.elapsed() > budget).then(|| HarnessStall::WallClock {
                budget,
                cycles: net.now(),
            })
        } else {
            None
        };
        if let Some(stall) = &stall {
            let now = net.now();
            if let Some(reg) = net.telemetry_mut() {
                let detail = stall.to_string();
                // One line is plenty for the event stream; the full
                // report goes to the panic payload.
                let first = detail.lines().next().unwrap_or("stall");
                reg.event(
                    "harness.watchdog",
                    now,
                    &[("kind", stall.kind()), ("detail", first)],
                );
            }
        }
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_sim::telemetry::TelemetryMode;
    use adaptnoc_topology::chip::mesh_chip;
    use adaptnoc_topology::geom::Grid;

    fn tiny_net() -> Network {
        let cfg = SimConfig::baseline();
        Network::new(mesh_chip(Grid::new(2, 2), &cfg).unwrap(), cfg).unwrap()
    }

    #[test]
    fn wall_clock_budget_trips_and_emits_event() {
        let mut net = tiny_net();
        net.set_telemetry_mode(TelemetryMode::Strict);
        let mut wd = HarnessWatchdog::with(Some(1), DEFAULT_WINDOW_CYCLES);
        wd.started = Instant::now() - Duration::from_secs(2);
        net.step();
        let stall = wd.observe(&mut net).expect("expired budget must trip");
        assert!(matches!(stall, HarnessStall::WallClock { .. }));
        assert_eq!(stall.kind(), "wall_clock");
        assert!(net.telemetry().expect("strict telemetry").event_count() >= 1);
    }

    #[test]
    fn healthy_run_with_disabled_wall_clock_never_trips() {
        let mut net = tiny_net();
        let mut wd = HarnessWatchdog::with(None, DEFAULT_WINDOW_CYCLES);
        for _ in 0..512 {
            net.step();
            assert!(wd.observe(&mut net).is_none());
        }
    }

    #[test]
    fn env_parsing_accepts_off_and_numbers() {
        assert_eq!(super::env_u64("ADAPTNOC_NO_SUCH_VAR_XYZ"), None);
        // `with` clamps: 0 secs disables the wall-clock bound.
        let wd = HarnessWatchdog::with(Some(0), 0);
        assert!(wd.wall_budget.is_none());
    }
}

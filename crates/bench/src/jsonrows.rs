//! JSON conversion for the bench row types.
//!
//! `gen-figures` writes `results/figures.json` with the in-tree
//! [`adaptnoc_sim::json`] value type; each row struct converts itself to an
//! insertion-ordered object here so the output stays byte-stable.

use crate::ablations::AblationRow;
use crate::faults::FaultRow;
use crate::figs::{EpochRow, MixedRow, PerAppRow, SelectionRow, SizeRow, SweepRow};
use crate::scenarios::ScenarioRow;
use crate::tables::{AreaTable, ReconfigRow, ScalabilityRow, TimingTable, WiringRow};
use adaptnoc_sim::json::Value;

/// Conversion into a JSON value (rows become ordered objects).
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Value;
}

/// Converts a slice of rows into a JSON array.
pub fn rows_json<T: ToJson>(rows: &[T]) -> Value {
    Value::Array(rows.iter().map(ToJson::to_json).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

impl ToJson for MixedRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("design".into(), s(&self.design)),
            ("network_latency".into(), num(self.network_latency)),
            ("queuing_latency".into(), num(self.queuing_latency)),
            ("packet_latency_norm".into(), num(self.packet_latency_norm)),
            (
                "network_latency_norm".into(),
                num(self.network_latency_norm),
            ),
            (
                "queuing_latency_norm".into(),
                num(self.queuing_latency_norm),
            ),
            ("exec_time_norm".into(), num(self.exec_time_norm)),
            ("energy_norm".into(), num(self.energy_norm)),
            ("dynamic_norm".into(), num(self.dynamic_norm)),
            ("static_norm".into(), num(self.static_norm)),
            ("edp_norm".into(), num(self.edp_norm)),
            ("hops".into(), num(self.hops)),
        ])
    }
}

impl ToJson for PerAppRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("app".into(), s(&self.app)),
            ("design".into(), s(&self.design)),
            ("hops_norm".into(), num(self.hops_norm)),
            ("queuing_norm".into(), num(self.queuing_norm)),
            ("hops".into(), num(self.hops)),
            ("queuing".into(), num(self.queuing)),
        ])
    }
}

impl ToJson for SelectionRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("app".into(), s(&self.app)),
            (
                "fractions".into(),
                Value::Array(self.fractions.iter().map(|&f| num(f)).collect()),
            ),
        ])
    }
}

impl ToJson for SizeRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("size".into(), s(&self.size)),
            ("latency_ratio".into(), num(self.latency_ratio)),
            ("energy_ratio".into(), num(self.energy_ratio)),
        ])
    }
}

impl ToJson for EpochRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("epoch_cycles".into(), num(self.epoch_cycles as f64)),
            ("latency_norm".into(), num(self.latency_norm)),
            ("power_norm".into(), num(self.power_norm)),
        ])
    }
}

impl ToJson for SweepRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("value".into(), num(self.value)),
            ("latency_norm".into(), num(self.latency_norm)),
            ("power_norm".into(), num(self.power_norm)),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("topology".into(), s(&self.topology)),
            ("seed".into(), num(self.seed as f64)),
            ("packet_latency".into(), num(self.packet_latency)),
            ("network_latency".into(), num(self.network_latency)),
            ("queuing_latency".into(), num(self.queuing_latency)),
            ("hops".into(), num(self.hops)),
            ("energy_j".into(), num(self.energy_j)),
            ("delivered".into(), num(self.delivered as f64)),
        ])
    }
}

impl ToJson for FaultRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("scenario".into(), s(&self.scenario)),
            ("seed".into(), num(self.seed as f64)),
            ("offered".into(), num(self.offered as f64)),
            ("delivered".into(), num(self.delivered as f64)),
            ("delivery_ratio".into(), num(self.delivery_ratio)),
            ("nacks".into(), num(self.nacks as f64)),
            ("retries".into(), num(self.retries as f64)),
            ("drops".into(), num(self.drops as f64)),
            ("recoveries".into(), num(self.recoveries as f64)),
            (
                "mean_time_to_recover".into(),
                num(self.mean_time_to_recover),
            ),
            ("avg_packet_latency".into(), num(self.avg_packet_latency)),
            ("disconnected".into(), num(self.disconnected as f64)),
        ])
    }
}

impl ToJson for ScenarioRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("scenario".into(), s(&self.scenario)),
            ("load".into(), num(self.load)),
            ("offered_rate".into(), num(self.offered_rate)),
            ("accepted_rate".into(), num(self.accepted_rate)),
            ("avg_latency".into(), num(self.avg_latency)),
            ("p50".into(), num(self.p50)),
            ("p95".into(), num(self.p95)),
            ("p99".into(), num(self.p99)),
            ("p999".into(), num(self.p999)),
            ("max_source_queue".into(), num(self.max_source_queue as f64)),
            ("offered".into(), num(self.offered as f64)),
            ("delivered".into(), num(self.delivered as f64)),
            ("drops".into(), num(self.drops as f64)),
            ("saturated".into(), Value::Bool(self.saturated)),
        ])
    }
}

impl ToJson for AreaTable {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("baseline_mm2".into(), num(self.baseline_mm2)),
            ("adapt_mm2".into(), num(self.adapt_mm2)),
            ("extras_mm2".into(), num(self.extras_mm2)),
            ("saving_fraction".into(), num(self.saving_fraction)),
        ])
    }
}

impl ToJson for WiringRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("topology".into(), s(&self.topology)),
            (
                "max_channels_per_edge".into(),
                num(self.max_channels_per_edge as f64),
            ),
            (
                "max_express_per_edge".into(),
                num(self.max_express_per_edge as f64),
            ),
            ("fits_budget".into(), Value::Bool(self.fits_budget)),
        ])
    }
}

impl ToJson for TimingTable {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "conventional_ps".into(),
                Value::Array(self.conventional_ps.iter().map(|&f| num(f)).collect()),
            ),
            (
                "adaptable_ps".into(),
                Value::Array(self.adaptable_ps.iter().map(|&f| num(f)).collect()),
            ),
            ("max_freq_ghz".into(), num(self.max_freq_ghz)),
            ("wire_4mm_ps".into(), num(self.wire_4mm_ps)),
            ("reversed_extra_ps".into(), num(self.reversed_extra_ps)),
            ("dqn_ns".into(), num(self.dqn_ns)),
        ])
    }
}

impl ToJson for ScalabilityRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("size".into(), s(&self.size)),
            ("design".into(), s(&self.design)),
            (
                "max_channels_per_edge".into(),
                num(self.max_channels_per_edge as f64),
            ),
            ("fits_budget".into(), Value::Bool(self.fits_budget)),
        ])
    }
}

impl ToJson for ReconfigRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("from".into(), s(&self.from)),
            ("to".into(), s(&self.to)),
            ("cycles".into(), num(self.cycles as f64)),
            ("fast_path".into(), Value::Bool(self.fast_path)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_ordered() {
        let row = SizeRow {
            size: "4x4".into(),
            latency_ratio: 0.9,
            energy_ratio: 0.8,
        };
        let v = rows_json(&[row]);
        let text = v.to_string_compact();
        assert_eq!(
            text,
            r#"[{"size":"4x4","latency_ratio":0.9,"energy_ratio":0.8}]"#
        );
    }
}

//! Regeneration of every evaluation figure (Figs. 7-19).
//!
//! Each function runs the corresponding experiment and returns printable
//! rows; `gen-figures` drives them all. Absolute numbers differ from the
//! paper (the substrate is this repository's simulator, not gem5-GPU on
//! the authors' testbed); the comparisons are reported normalized to the
//! baseline exactly as the paper presents them.

use crate::harness::{fixed_policies, oracle_policies_par, run_design, RunConfig, RunResult};
use crate::parallel::run_indexed;
use crate::training::{train_dqn, TrainConfig};
use adaptnoc_core::prelude::*;
use adaptnoc_rl::dqn::{DqnConfig, TrainedPolicy};
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;

/// Experiment scale (full runs vs quick smoke runs).
#[derive(Debug, Clone)]
pub struct FigScale {
    /// Steady-state measurement runs.
    pub rc: RunConfig,
    /// Run-to-completion runs (execution time / energy).
    pub rc_completion: RunConfig,
    /// Oracle-evaluation runs.
    pub rc_oracle: RunConfig,
    /// RL training budget.
    pub train: TrainConfig,
    /// Number of mixed-workload combinations to average.
    pub mixes: usize,
    /// Worker threads for fanning independent simulation points
    /// (see [`crate::parallel`]); results are identical at any count.
    pub threads: usize,
}

impl FigScale {
    /// Paper-scale: 50K-cycle epochs.
    pub fn full() -> Self {
        FigScale {
            rc: RunConfig {
                epoch_cycles: 50_000,
                epochs: 8,
                warmup_epochs: 2,
                ..Default::default()
            },
            rc_completion: RunConfig {
                epoch_cycles: 50_000,
                run_to_completion: true,
                max_cycles: 3_000_000,
                ..Default::default()
            },
            rc_oracle: RunConfig {
                epoch_cycles: 10_000,
                epochs: 2,
                warmup_epochs: 1,
                ..Default::default()
            },
            train: TrainConfig::default(),
            mixes: 2,
            threads: 1,
        }
    }

    /// Quick scale for smoke tests and CI.
    pub fn quick() -> Self {
        FigScale {
            rc: RunConfig {
                epoch_cycles: 6_000,
                epochs: 2,
                warmup_epochs: 1,
                ..Default::default()
            },
            rc_completion: RunConfig {
                epoch_cycles: 6_000,
                run_to_completion: true,
                max_cycles: 400_000,
                ..Default::default()
            },
            rc_oracle: RunConfig {
                epoch_cycles: 4_000,
                epochs: 1,
                warmup_epochs: 1,
                ..Default::default()
            },
            train: TrainConfig::tiny(),
            mixes: 1,
            threads: 1,
        }
    }
}

/// The mixed-workload app combinations (CPU 4x4 + GPU 4x4 + GPU 8x4 on the
/// paper's three-region layout).
pub fn mixes() -> Vec<[&'static str; 3]> {
    vec![["CA", "KM", "BP"], ["FL", "HS", "GA"], ["BS", "NW", "BFS"]]
}

fn mix_profiles(names: &[&str; 3]) -> Vec<AppProfile> {
    names.iter().map(|n| by_name(n).unwrap()).collect()
}

/// Trains the deployed RL policy for the figure campaign, caching the
/// weight-only artifact under `results/` so one campaign trains once
/// (delete `results/policy.json` to force retraining).
pub fn trained_policy(scale: &FigScale) -> TrainedPolicy {
    let cache = std::path::Path::new("results/policy.json");
    let tag = format!("{}ep-{}epc", scale.train.episodes, scale.train.epoch_cycles);
    if let Ok(body) = std::fs::read_to_string(cache) {
        if let Some(rest) = body.strip_prefix(&format!(
            "{tag}
"
        )) {
            if let Ok(p) = TrainedPolicy::from_json(rest) {
                return p;
            }
        }
    }
    let policy = train_dqn(&crate::training::default_scenarios(), &scale.train, None)
        .expect("training must succeed");
    if let Ok(json) = policy.to_json() {
        std::fs::create_dir_all("results").ok();
        std::fs::write(
            cache,
            format!(
                "{tag}
{json}"
            ),
        )
        .ok();
    }
    policy
}

fn adapt_policies(policy: &TrainedPolicy, n: usize) -> Vec<TopologyPolicy> {
    (0..n)
        .map(|_| TopologyPolicy::Trained(policy.clone()))
        .collect()
}

/// One design's aggregate over the mixed-workload campaign — the data
/// behind Figs. 7, 10, 11, 12 and 13.
#[derive(Debug, Clone)]
pub struct MixedRow {
    /// Design name.
    pub design: String,
    /// Mean network latency, cycles.
    pub network_latency: f64,
    /// Mean queuing latency, cycles.
    pub queuing_latency: f64,
    /// Fig. 7: packet latency normalized to baseline.
    pub packet_latency_norm: f64,
    /// Fig. 7 stack component: network latency normalized to baseline.
    pub network_latency_norm: f64,
    /// Fig. 7 stack component: queuing latency normalized to baseline.
    pub queuing_latency_norm: f64,
    /// Fig. 10: execution time normalized to baseline.
    pub exec_time_norm: f64,
    /// Fig. 11: total energy normalized to baseline.
    pub energy_norm: f64,
    /// Fig. 12: dynamic energy normalized to baseline.
    pub dynamic_norm: f64,
    /// Fig. 13: static energy normalized to baseline.
    pub static_norm: f64,
    /// Energy-delay product normalized to baseline (Sec. V-A3: Adapt-NoC's
    /// EDP beats FTBY_PG despite the static-energy tie).
    pub edp_norm: f64,
    /// Mean hops.
    pub hops: f64,
}

/// Runs the full mixed-workload campaign over all seven designs.
///
/// # Errors
///
/// Propagates [`ControlError`] from any run.
pub fn mixed_campaign(scale: &FigScale) -> Result<Vec<MixedRow>, ControlError> {
    let policy = trained_policy(scale);
    let layout = ChipLayout::paper_mixed();
    let all_mixes = mixes();
    let used: Vec<&[&str; 3]> = all_mixes.iter().take(scale.mixes.max(1)).collect();

    // Phase 1: per-mix oracles (each oracle fans its region x candidate
    // grid internally).
    let mut oracles: Vec<Vec<TopologyKind>> = Vec::new();
    for names in &used {
        let profiles = mix_profiles(names);
        let oracle = oracle_policies_par(&layout, &profiles, &scale.rc_oracle, scale.threads)?;
        oracles.push(
            oracle
                .iter()
                .map(|p| match p {
                    TopologyPolicy::Fixed(k) => *k,
                    _ => TopologyKind::Mesh,
                })
                .collect(),
        );
    }

    // Phase 2: the mix x design measurement grid, fully independent points.
    let designs = DesignKind::ALL;
    let results = run_indexed(used.len() * designs.len(), scale.threads, |i| {
        let (mi, di) = (i / designs.len(), i % designs.len());
        let kind = designs[di];
        let profiles = mix_profiles(used[mi]);
        let policies = match kind {
            DesignKind::AdaptNocNoRl => fixed_policies(&oracles[mi]),
            DesignKind::AdaptNoc => adapt_policies(&policy, layout.regions.len()),
            _ => vec![],
        };
        run_design(kind, &layout, &profiles, policies, &scale.rc_completion)
    });
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Accumulate per design over mixes (latency sums, exec, energy splits,
    // EDP); the reduction walks results in grid order, so it matches the
    // serial loop exactly.
    #[derive(Default, Clone, Copy)]
    struct Acc(f64, f64, f64, f64, f64, f64, f64, f64);
    let mut sums: Vec<Acc> = vec![Acc::default(); designs.len()];
    for (i, r) in results.iter().enumerate() {
        let s = &mut sums[i % designs.len()];
        s.0 += r.network_latency;
        s.1 += r.queuing_latency;
        s.2 += r.packet_latency();
        s.3 += r.execution_time.unwrap_or(r.cycles) as f64;
        s.4 += r.energy.total_j();
        s.5 += r.energy.dynamic_j;
        s.6 += r.energy.static_j;
        s.7 += r.edp();
    }

    let n = used.len() as f64;
    let base = &sums[0];
    let rows = DesignKind::ALL
        .iter()
        .enumerate()
        .map(|(di, kind)| {
            let s = &sums[di];
            MixedRow {
                design: kind.name().to_string(),
                network_latency: s.0 / n,
                queuing_latency: s.1 / n,
                packet_latency_norm: s.2 / base.2,
                network_latency_norm: s.0 / base.0,
                queuing_latency_norm: if base.1 > 0.0 { s.1 / base.1 } else { 0.0 },
                exec_time_norm: s.3 / base.3,
                energy_norm: s.4 / base.4,
                dynamic_norm: s.5 / base.5,
                static_norm: s.6 / base.6,
                edp_norm: s.7 / base.7,
                hops: 0.0,
            }
        })
        .collect();
    Ok(rows)
}

/// One (benchmark, design) cell of Figs. 8 and 9.
#[derive(Debug, Clone)]
pub struct PerAppRow {
    /// Benchmark name.
    pub app: String,
    /// Design name.
    pub design: String,
    /// Hop count normalized to the baseline for the same app.
    pub hops_norm: f64,
    /// Queuing latency normalized to the baseline (Fig. 9).
    pub queuing_norm: f64,
    /// Raw hops.
    pub hops: f64,
    /// Raw queuing latency.
    pub queuing: f64,
}

fn per_app_figure(
    suite: Vec<AppProfile>,
    rect: Rect,
    gpu: bool,
    scale: &FigScale,
) -> Result<Vec<PerAppRow>, ControlError> {
    let policy = trained_policy(scale);
    // One point per application: each runs its own oracle plus all seven
    // designs, so apps fan out while the in-app normalization against the
    // freshly-run baseline stays local to the point.
    let per_app = run_indexed(suite.len(), scale.threads, |ai| {
        let profile = &suite[ai];
        let layout = ChipLayout::single(rect, gpu);
        let oracle =
            oracle_policies_par(&layout, std::slice::from_ref(profile), &scale.rc_oracle, 1)?;
        let oracle_kind = match oracle[0] {
            TopologyPolicy::Fixed(k) => k,
            _ => TopologyKind::Mesh,
        };
        let mut rows = Vec::new();
        let mut base: Option<RunResult> = None;
        for kind in DesignKind::ALL {
            let policies = match kind {
                DesignKind::AdaptNocNoRl => fixed_policies(&[oracle_kind]),
                DesignKind::AdaptNoc => adapt_policies(&policy, 1),
                _ => vec![],
            };
            let r = run_design(
                kind,
                &layout,
                std::slice::from_ref(profile),
                policies,
                &scale.rc,
            )?;
            if kind == DesignKind::Baseline {
                base = Some(r.clone());
            }
            let b = base.as_ref().unwrap();
            rows.push(PerAppRow {
                app: profile.name.to_string(),
                design: kind.name().to_string(),
                hops_norm: if b.hops > 0.0 { r.hops / b.hops } else { 0.0 },
                queuing_norm: if b.queuing_latency > 0.0 {
                    r.queuing_latency / b.queuing_latency
                } else {
                    0.0
                },
                hops: r.hops,
                queuing: r.queuing_latency,
            });
        }
        Ok::<_, ControlError>(rows)
    });
    let mut rows = Vec::new();
    for app_rows in per_app {
        rows.extend(app_rows?);
    }
    Ok(rows)
}

/// Fig. 8: hop counts of the CPU (Parsec) applications in 4x4 subNoCs.
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig08(scale: &FigScale) -> Result<Vec<PerAppRow>, ControlError> {
    per_app_figure(parsec_suite(), Rect::new(0, 0, 4, 4), false, scale)
}

/// Fig. 9: hop counts and queuing latency of the GPU (Rodinia)
/// applications in 4x8 subNoCs.
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig09(scale: &FigScale) -> Result<Vec<PerAppRow>, ControlError> {
    per_app_figure(rodinia_suite(), Rect::new(0, 0, 4, 8), true, scale)
}

/// One benchmark's topology-selection breakdown (Figs. 14, 15).
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// Benchmark name.
    pub app: String,
    /// Fraction of epochs each topology was selected
    /// (mesh, cmesh, torus, tree).
    pub fractions: [f64; 4],
}

fn selection_figure(
    suite: Vec<AppProfile>,
    rect: Rect,
    gpu: bool,
    scale: &FigScale,
) -> Result<Vec<SelectionRow>, ControlError> {
    let policy = trained_policy(scale);
    let rc = RunConfig {
        epochs: scale.rc.epochs.max(6),
        ..scale.rc
    };
    let rows = run_indexed(suite.len(), scale.threads, |ai| {
        let profile = &suite[ai];
        let layout = ChipLayout::single(rect, gpu);
        let r = run_design(
            DesignKind::AdaptNoc,
            &layout,
            std::slice::from_ref(profile),
            adapt_policies(&policy, 1),
            &rc,
        )?;
        Ok(SelectionRow {
            app: profile.name.to_string(),
            fractions: r.selections.unwrap()[0],
        })
    });
    rows.into_iter().collect()
}

/// Fig. 14: topology-selection breakdown of the CPU applications (4x4).
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig14(scale: &FigScale) -> Result<Vec<SelectionRow>, ControlError> {
    selection_figure(parsec_suite(), Rect::new(0, 0, 4, 4), false, scale)
}

/// Fig. 15: topology-selection breakdown of the GPU applications (4x8).
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig15(scale: &FigScale) -> Result<Vec<SelectionRow>, ControlError> {
    selection_figure(rodinia_suite(), Rect::new(0, 0, 4, 8), true, scale)
}

/// One subNoC size's RL-vs-static comparison (Fig. 16).
#[derive(Debug, Clone)]
pub struct SizeRow {
    /// SubNoC size label.
    pub size: String,
    /// Adapt-NoC packet latency / Adapt-NoC-noRL packet latency.
    pub latency_ratio: f64,
    /// Adapt-NoC energy / Adapt-NoC-noRL energy.
    pub energy_ratio: f64,
}

/// Fig. 16: RL performance across subNoC sizes (2x4 ... 8x8, GPU apps).
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig16(scale: &FigScale) -> Result<Vec<SizeRow>, ControlError> {
    let policy = trained_policy(scale);
    let sizes = [(2u8, 4u8), (4, 4), (4, 8), (8, 8)];
    let profile = by_name("BP").unwrap();
    let rows = run_indexed(sizes.len(), scale.threads, |si| {
        let (w, h) = sizes[si];
        let rect = Rect::new(0, 0, w, h);
        let layout = ChipLayout::single(rect, true);
        let oracle =
            oracle_policies_par(&layout, std::slice::from_ref(&profile), &scale.rc_oracle, 1)?;
        let norl = run_design(
            DesignKind::AdaptNocNoRl,
            &layout,
            std::slice::from_ref(&profile),
            oracle,
            &scale.rc,
        )?;
        let rl = run_design(
            DesignKind::AdaptNoc,
            &layout,
            std::slice::from_ref(&profile),
            adapt_policies(&policy, 1),
            &scale.rc,
        )?;
        Ok(SizeRow {
            size: format!("{w}x{h}"),
            latency_ratio: rl.packet_latency() / norl.packet_latency().max(1e-9),
            energy_ratio: rl.energy.total_j() / norl.energy.total_j().max(1e-30),
        })
    });
    rows.into_iter().collect()
}

/// One epoch-size point (Fig. 17).
#[derive(Debug, Clone)]
pub struct EpochRow {
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// Packet latency normalized to the 50K point.
    pub latency_norm: f64,
    /// Average power normalized to the 50K point.
    pub power_norm: f64,
}

/// Fig. 17: epoch-size sweep (10K - 100K cycles).
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig17(scale: &FigScale) -> Result<Vec<EpochRow>, ControlError> {
    let policy = trained_policy(scale);
    let layout = ChipLayout::paper_mixed();
    let profiles = mix_profiles(&mixes()[0]);
    let sizes = [10_000u64, 25_000, 50_000, 75_000, 100_000];
    // Keep total simulated cycles constant across points.
    let total_cycles = scale.rc.epoch_cycles * (scale.rc.epochs + scale.rc.warmup_epochs).max(4);
    let raw = run_indexed(sizes.len(), scale.threads, |i| {
        let e = sizes[i];
        let epochs = (total_cycles / e).max(2);
        let rc = RunConfig {
            epoch_cycles: e,
            epochs: epochs.saturating_sub(1).max(1),
            warmup_epochs: 1,
            ..scale.rc
        };
        let r = run_design(
            DesignKind::AdaptNoc,
            &layout,
            &profiles,
            adapt_policies(&policy, layout.regions.len()),
            &rc,
        )?;
        let power = r.energy.total_j() / (r.cycles.max(1) as f64 * 1e-9);
        Ok((e, r.packet_latency(), power))
    });
    let raw = raw.into_iter().collect::<Result<Vec<_>, ControlError>>()?;
    let base = raw
        .iter()
        .find(|(e, _, _)| *e == 50_000)
        .copied()
        .unwrap_or(raw[raw.len() / 2]);
    Ok(raw
        .into_iter()
        .map(|(e, lat, pw)| EpochRow {
            epoch_cycles: e,
            latency_norm: lat / base.1.max(1e-9),
            power_norm: pw / base.2.max(1e-30),
        })
        .collect())
}

/// One hyper-parameter sweep point (Figs. 18, 19).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Swept parameter value.
    pub value: f64,
    /// Packet latency normalized to the paper's default point.
    pub latency_norm: f64,
    /// Power normalized to the paper's default point.
    pub power_norm: f64,
}

/// Fig. 18: discount-factor sweep (γ), normalized to γ=0.9.
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig18(scale: &FigScale) -> Result<Vec<SweepRow>, ControlError> {
    let gammas = [0.5, 0.7, 0.9, 0.99];
    // Train each gamma over the full scenario matrix (with a reduced
    // episode budget) and evaluate on the mixed-workload chip, where
    // per-region phase diversity separates the policies.
    let layout = ChipLayout::paper_mixed();
    let profiles = mix_profiles(&mixes()[0]);
    let tc = TrainConfig {
        episodes: (scale.train.episodes / 2).max(4),
        ..scale.train
    };
    // Each gamma's training (and its evaluation seeds) is independent, so
    // whole trainings fan out; the DQN itself stays sequential because the
    // agent evolves across episodes.
    let raw = run_indexed(gammas.len(), scale.threads, |gi| {
        let g = gammas[gi];
        let policy = train_dqn(
            &crate::training::default_scenarios(),
            &tc,
            Some(DqnConfig {
                gamma: g,
                ..Default::default()
            }),
        )?;
        let seeds = [5u64, 17, 29];
        let mut lat = 0.0;
        let mut pw = 0.0;
        for &seed in &seeds {
            let r = run_design(
                DesignKind::AdaptNoc,
                &layout,
                &profiles,
                adapt_policies(&policy, layout.regions.len()),
                &RunConfig { seed, ..scale.rc },
            )?;
            lat += r.packet_latency();
            pw += r.energy.total_j() / (r.cycles.max(1) as f64 * 1e-9);
        }
        Ok((g, lat / seeds.len() as f64, pw / seeds.len() as f64))
    });
    let raw = raw.into_iter().collect::<Result<Vec<_>, ControlError>>()?;
    let base = raw.iter().find(|(g, _, _)| *g == 0.9).copied().unwrap();
    Ok(raw
        .into_iter()
        .map(|(g, lat, pw)| SweepRow {
            value: g,
            latency_norm: lat / base.1.max(1e-9),
            power_norm: pw / base.2.max(1e-30),
        })
        .collect())
}

/// Fig. 19: exploration-rate sweep (ε), normalized to ε=0.05.
///
/// # Errors
///
/// Propagates [`ControlError`].
pub fn fig19(scale: &FigScale) -> Result<Vec<SweepRow>, ControlError> {
    let policy = trained_policy(scale);
    let epsilons = [0.0, 0.05, 0.1, 0.25, 0.5];
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 8), true);
    let profile = by_name("BP").unwrap();
    // Enough epoch decisions for the exploration rate to matter, averaged
    // over seeds.
    let rc = RunConfig {
        epochs: scale.rc.epochs.max(10),
        ..scale.rc
    };
    let seeds = [11u64, 23, 47];
    // Flatten the epsilon x seed grid so every run is one point, then
    // reduce per epsilon in seed order (the same addition order as the
    // serial loop, so the means are bit-identical).
    let points = run_indexed(epsilons.len() * seeds.len(), scale.threads, |i| {
        let eps = epsilons[i / seeds.len()];
        let seed = seeds[i % seeds.len()];
        let p = policy.clone().with_epsilon(eps);
        let r = run_design(
            DesignKind::AdaptNoc,
            &layout,
            std::slice::from_ref(&profile),
            vec![TopologyPolicy::Trained(p)],
            &RunConfig { seed, ..rc },
        )?;
        Ok((
            r.packet_latency(),
            r.energy.total_j() / (r.cycles.max(1) as f64 * 1e-9),
        ))
    });
    let points = points
        .into_iter()
        .collect::<Result<Vec<_>, ControlError>>()?;
    let raw: Vec<(f64, f64, f64)> = epsilons
        .iter()
        .zip(points.chunks(seeds.len()))
        .map(|(&eps, per_eps)| {
            let (mut lat, mut pw) = (0.0, 0.0);
            for (l, p) in per_eps {
                lat += l;
                pw += p;
            }
            (eps, lat / seeds.len() as f64, pw / seeds.len() as f64)
        })
        .collect();
    let base = raw.iter().find(|(e, _, _)| *e == 0.05).copied().unwrap();
    Ok(raw
        .into_iter()
        .map(|(e, lat, pw)| SweepRow {
            value: e,
            latency_norm: lat / base.1.max(1e-9),
            power_norm: pw / base.2.max(1e-30),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_well_formed() {
        for m in mixes() {
            for n in m {
                assert!(by_name(n).is_some(), "unknown app {n}");
            }
        }
    }

    #[test]
    fn quick_fig16_produces_all_sizes() {
        let rows = fig16(&FigScale::quick()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].size, "2x4");
        assert_eq!(rows[3].size, "8x8");
        for r in rows {
            assert!(r.latency_ratio > 0.0);
            assert!(r.energy_ratio > 0.0);
        }
    }

    #[test]
    fn quick_fig19_epsilon_sweep() {
        let rows = fig19(&FigScale::quick()).unwrap();
        assert_eq!(rows.len(), 5);
        let base = rows.iter().find(|r| r.value == 0.05).unwrap();
        assert!((base.latency_norm - 1.0).abs() < 1e-9);
        assert!((base.power_norm - 1.0).abs() < 1e-9);
    }
}

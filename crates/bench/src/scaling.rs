//! Large-mesh scaling campaign (ROADMAP item 2).
//!
//! Pushes the simulator well past the paper's 8x8 evaluation chip: flat
//! meshes at 16x16, 32x32 and 64x64 tiles plus a 64x64-tile *chiplet
//! fabric* (4x4 chips of 16x16 tiles joined by serialized inter-chip
//! links, see `adaptnoc_topology::chiplet`). Each design point runs an
//! idle pass (active-set fast path — the scheduler must not collapse at
//! 4096 routers) and a loaded pass (open-loop uniform traffic; the
//! chiplet point uses the cross-chip pattern so every packet exercises a
//! SerDes boundary), then drains in-flight packets to completion so
//! delivery is exact.
//!
//! With `threads > 1` every network steps region-parallel on a
//! [`StepPool`]; rows are **byte-identical** at any thread count — that
//! equivalence at 64x64 is what the CI `scaling-smoke` job pins.

use crate::jsonrows::ToJson;
use adaptnoc_sim::json::Value;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::par::StepPool;
use adaptnoc_sim::prelude::SimConfig;
use adaptnoc_topology::chip::mesh_chip;
use adaptnoc_topology::chiplet::{chiplet_chip, ChipletConfig};
use adaptnoc_topology::geom::{Grid, Rect};
use adaptnoc_topology::plan::BuildError;
use adaptnoc_workloads::traffic::{Pattern, SyntheticInjector};

/// One scaling-campaign measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Design-point name (`mesh-64x64`, `chiplet-4x4x16`, ...).
    pub design: String,
    /// Grid width in tiles.
    pub width: u8,
    /// Grid height in tiles.
    pub height: u8,
    /// Routers in the design.
    pub routers: usize,
    /// Channels in the design (inter-router links, all kinds).
    pub channels: usize,
    /// Offered injection rate, packets per node per cycle (0 = idle).
    pub load: f64,
    /// Injection cycles simulated (the drain tail is extra).
    pub cycles: u64,
    /// Packets offered by the injector.
    pub offered: u64,
    /// Packets delivered after the drain.
    pub delivered: u64,
    /// Mean end-to-end packet latency, cycles.
    pub avg_latency: f64,
    /// Mean hop count.
    pub avg_hops: f64,
}

impl ToJson for ScalingRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("design".into(), Value::String(self.design.clone())),
            ("width".into(), Value::Number(self.width as f64)),
            ("height".into(), Value::Number(self.height as f64)),
            ("routers".into(), Value::Number(self.routers as f64)),
            ("channels".into(), Value::Number(self.channels as f64)),
            ("load".into(), Value::Number(self.load)),
            ("cycles".into(), Value::Number(self.cycles as f64)),
            ("offered".into(), Value::Number(self.offered as f64)),
            ("delivered".into(), Value::Number(self.delivered as f64)),
            ("avg_latency".into(), Value::Number(self.avg_latency)),
            ("avg_hops".into(), Value::Number(self.avg_hops)),
        ])
    }
}

/// A design point of the scaling campaign.
#[derive(Debug, Clone, Copy)]
enum Design {
    Mesh(u8),
    Chiplet(ChipletConfig),
}

impl Design {
    fn name(&self) -> String {
        match self {
            Design::Mesh(n) => format!("mesh-{n}x{n}"),
            Design::Chiplet(cc) => {
                format!("chiplet-{}x{}x{}", cc.chips_x, cc.chips_y, cc.chip_w)
            }
        }
    }
}

/// The campaign's design points: flat meshes growing to 64x64 plus the
/// 64x64 chiplet fabric.
fn designs() -> Vec<Design> {
    vec![
        Design::Mesh(16),
        Design::Mesh(32),
        Design::Mesh(64),
        Design::Chiplet(ChipletConfig::new(4, 4, 16, 16)),
    ]
}

/// Loaded-pass injection rate per design. Kept well under each design's
/// saturation point so the loaded row measures steady-state latency, not
/// queue growth: a 64x64 mesh bisects at 64 links but a chiplet fabric
/// funnels all cross-boundary traffic through `4 boundaries x 2 links`,
/// so the fabric's rate must be far lower.
fn loaded_rate(d: &Design) -> f64 {
    match d {
        Design::Mesh(_) => 0.01,
        Design::Chiplet(_) => 0.001,
    }
}

fn run_point(
    design: &Design,
    load: f64,
    cycles: u64,
    pool: Option<&mut StepPool>,
) -> Result<ScalingRow, BuildError> {
    let cfg = SimConfig::baseline();
    let (spec, grid, pattern) = match design {
        Design::Mesh(n) => (
            mesh_chip(Grid::new(*n, *n), &cfg)?,
            Grid::new(*n, *n),
            Pattern::Uniform,
        ),
        Design::Chiplet(cc) => (
            chiplet_chip(cc, &cfg)?,
            cc.grid(),
            Pattern::CrossChip {
                chip_w: cc.chip_w,
                chip_h: cc.chip_h,
            },
        ),
    };
    let routers = spec.routers.len();
    let channels = spec.channels.len();
    let mut net = Network::new(spec, cfg).expect("validated spec builds a network");
    let full = Rect::new(0, 0, grid.width, grid.height);
    // Seed ties the injector stream to the design point, not the thread
    // count, so rows are byte-identical serial vs. region-parallel.
    let seed = 0xA5CA1E ^ (grid.width as u64) << 8 ^ (load * 1e6) as u64;
    let mut inj = SyntheticInjector::new(grid, full, pattern, load, seed);
    let mut pool = pool;
    let mut offered = 0u64;
    for _ in 0..cycles {
        if load > 0.0 {
            offered += inj.tick(&mut net) as u64;
        }
        match pool.as_deref_mut() {
            Some(p) => net.step_parallel(p),
            None => net.step(),
        }
    }
    // Drain to completion (bounded: the fabrics are deadlock-free, so a
    // stall here is a bug worth failing loudly on).
    let mut budget = 1_000_000u64;
    while net.in_flight() > 0 {
        match pool.as_deref_mut() {
            Some(p) => net.step_parallel(p),
            None => net.step(),
        }
        budget -= 1;
        assert!(budget > 0, "{} did not drain", design.name());
    }
    let delivered = net.drain_delivered().len() as u64;
    let stats = net.totals().stats;
    Ok(ScalingRow {
        design: design.name(),
        width: grid.width,
        height: grid.height,
        routers,
        channels,
        load,
        cycles,
        offered,
        delivered,
        avg_latency: stats.avg_packet_latency(),
        avg_hops: stats.avg_hops(),
    })
}

/// Runs the scaling campaign: every design point idle and loaded, in a
/// fixed order. `cycles` is the injection window per point (the
/// `--quick` figure scale uses a short one); `threads > 1` steps each
/// network region-parallel on one shared [`StepPool`].
///
/// Rows are byte-identical at any `threads` value — the campaign is the
/// in-tree witness that region-parallel stepping is exact at 64x64.
///
/// # Errors
///
/// Returns [`BuildError`] if a design fails to build (which would be a
/// bug in the topology generators, not a configuration problem).
pub fn scaling_campaign(cycles: u64, threads: usize) -> Result<Vec<ScalingRow>, BuildError> {
    let mut pool = (threads > 1).then(|| StepPool::new(threads));
    let mut rows = Vec::new();
    for d in designs() {
        for load in [0.0, loaded_rate(&d)] {
            rows.push(run_point(&d, load, cycles, pool.as_mut())?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_thread_invariant() {
        // A miniature analogue of the full campaign (tiny meshes, short
        // window) proving byte-identity across thread counts without the
        // 64x64 cost; CI's scaling-smoke runs the real sizes.
        let mini = [
            Design::Mesh(8),
            Design::Chiplet(ChipletConfig::new(2, 2, 4, 4)),
        ];
        let run = |threads: usize| -> Vec<ScalingRow> {
            let mut pool = (threads > 1).then(|| StepPool::new(threads));
            let mut rows = Vec::new();
            for d in &mini {
                for load in [0.0, loaded_rate(d).max(0.01)] {
                    rows.push(run_point(d, load, 600, pool.as_mut()).unwrap());
                }
            }
            rows
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial, par, "rows must be byte-identical across threads");
        // The loaded points actually moved packets, end to end.
        for r in &serial {
            if r.load > 0.0 {
                assert!(r.offered > 0, "{}: no packets offered", r.design);
                assert_eq!(r.offered, r.delivered, "{}: drain lost packets", r.design);
                assert!(r.avg_hops > 1.0, "{}: hops too low", r.design);
            } else {
                assert_eq!(r.offered, 0);
            }
        }
    }

    #[test]
    fn rows_serialize_with_design_first() {
        let r = ScalingRow {
            design: "mesh-16x16".into(),
            width: 16,
            height: 16,
            routers: 256,
            channels: 960,
            load: 0.01,
            cycles: 100,
            offered: 5,
            delivered: 5,
            avg_latency: 12.5,
            avg_hops: 6.0,
        };
        assert!(r
            .to_json()
            .to_string_compact()
            .starts_with(r#"{"design":"mesh-16x16","width":16"#));
    }
}

//! # adaptnoc-bench
//!
//! The experiment harness regenerating every evaluation figure (Figs. 7-19)
//! and overhead table (Sec. V-B) of the Adapt-NoC paper:
//!
//! * [`harness`] — one-design/one-workload runner collecting latency, hop,
//!   energy, execution-time and selection metrics.
//! * [`training`] — the offline DQN training pipeline over the paper's
//!   region-size x application training matrix.
//! * [`figs`] — one function per figure.
//! * [`faults`] — fault-sweep campaign (resilience under seeded faults).
//! * [`scenarios`] — open-system scenario campaign (latency-throughput
//!   curves from checked-in `.scn` files).
//! * [`scaling`] — large-mesh scaling campaign (16x16 through 64x64 flat
//!   meshes plus the 64x64 chiplet fabric, thread-invariant rows).
//! * [`tables`] — area / wiring / timing / reconfiguration-latency tables.
//! * [`watchdog`] — the environment-configurable harness watchdog
//!   (wall-clock + cycle-window) guarding unattended runs.
//! * [`submit`] — the farm-daemon client behind `gen-figures --submit`
//!   (see `docs/FARM.md`).
//!
//! The `gen-figures` binary runs everything and prints the rows the paper
//! reports (normalized to the baseline design).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod faults;
pub mod figs;
pub mod harness;
pub mod jsonrows;
pub mod microbench;
pub mod parallel;
pub mod report;
pub mod scaling;
pub mod scenarios;
pub mod submit;
pub mod tables;
pub mod telemetry;
pub mod training;
pub mod watchdog;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ablations::{ablation_sweep, AblationRow};
    pub use crate::faults::{fault_sweep, fault_sweep_checkpointed, fault_sweep_par, FaultRow};
    pub use crate::figs::{
        fig08, fig09, fig14, fig15, fig16, fig17, fig18, fig19, mixed_campaign, trained_policy,
        FigScale,
    };
    pub use crate::harness::{
        fixed_policies, oracle_policies, oracle_policies_par, run_design, traffic_hint, AppMetrics,
        RunConfig, RunResult,
    };
    pub use crate::parallel::{
        configured_threads, run_checkpointed, run_checkpointed_observed, run_indexed,
        run_indexed_isolated, PartialCampaign, PointFailure,
    };
    pub use crate::report::render_report;
    pub use crate::scaling::{scaling_campaign, ScalingRow};
    pub use crate::scenarios::{
        campaign_loads, load_scenario, scenario_point, scenario_sweep_checkpointed,
        scenario_sweep_par, ScenarioError, ScenarioRow, LATENCY_THROUGHPUT_SCN,
    };
    pub use crate::tables::{
        area_table, reconfig_table, scalability_table, timing_table, wiring_table,
    };
    pub use crate::telemetry::{atomic_write, telemetry_probe, write_metrics};
    pub use crate::training::{
        default_scenarios, paper_training_rects, train_dqn, TrainConfig, TrainScenario,
    };
}

//! Scenario campaigns: open-system latency–throughput curves.
//!
//! Runs a checked-in `.scn` file (see `scenarios/` at the repo root and
//! `docs/SCENARIOS.md`) once per sweep load point, each point an
//! independent seeded simulation, and reduces every run to one
//! [`ScenarioRow`]. Points fan out over [`crate::parallel::run_indexed`]
//! — output is byte-identical at any thread count because each point is
//! fully determined by its index — and [`scenario_sweep_checkpointed`]
//! adds the same JSON-lines journal the fault sweep uses, so a killed
//! campaign resumes from its completed points.

use adaptnoc_scenario::prelude::*;
use adaptnoc_sim::json::Value;
use std::fmt;
use std::path::Path;

/// The default campaign scenario: uniform Poisson load sweep on the
/// 8x8 baseline mesh (`scenarios/latency_throughput.scn`).
pub const LATENCY_THROUGHPUT_SCN: &str = include_str!("../../../scenarios/latency_throughput.scn");

/// A scenario that could not be loaded (parsed or compiled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ScenarioError {}

/// Parses and compiles scenario source into an executable plan.
///
/// # Errors
///
/// Returns [`ScenarioError`] with the parse or compile diagnostic.
pub fn load_scenario(src: &str) -> Result<ExecPlan, ScenarioError> {
    let sc = parse(src).map_err(|e| ScenarioError { msg: e.to_string() })?;
    compile(&sc).map_err(|e| ScenarioError { msg: e.to_string() })
}

/// The campaign's load points: the sweep directive's grid, or a single
/// `None` (run the scenario once as written) when there is no sweep.
pub fn campaign_loads(plan: &ExecPlan) -> Vec<Option<f64>> {
    match plan.sweep {
        Some(s) => s.points().into_iter().map(Some).collect(),
        None => vec![None],
    }
}

/// One campaign point: a full scenario run reduced to curve coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name (campaign label).
    pub scenario: String,
    /// The sweep load substituted into `load sweep` placeholders (equal
    /// to `offered_rate` below saturation; 0 for sweep-less scenarios).
    pub load: f64,
    /// Measured offered load, packets per node per cycle.
    pub offered_rate: f64,
    /// Accepted throughput, packets per node per cycle.
    pub accepted_rate: f64,
    /// Mean total packet latency, cycles.
    pub avg_latency: f64,
    /// Median total packet latency.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// 99.9th-percentile latency.
    pub p999: f64,
    /// Largest sampled sum of NI source-queue depths.
    pub max_source_queue: u64,
    /// Packets offered during measurement.
    pub offered: u64,
    /// Packets delivered during measurement.
    pub delivered: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Whether the point is past the knee (accepted < 95% of offered).
    pub saturated: bool,
}

/// One cancellable campaign point: runs `plan` at `load` with `cancel`
/// threaded into the simulation loop, so a supervisor (the farm daemon's
/// deadline watchdog, a user `farmctl cancel`, or a graceful shutdown)
/// can interrupt even a single long point at an epoch boundary.
///
/// # Errors
///
/// [`RunError::Cancelled`] when the token fires mid-run, or the
/// underlying scenario runner error.
pub fn scenario_point(
    name: &str,
    plan: &ExecPlan,
    load: Option<f64>,
    cancel: &CancelToken,
) -> Result<ScenarioRow, RunError> {
    let opts = RunOptions {
        load,
        cancel: cancel.clone(),
        ..RunOptions::default()
    };
    let out = run(plan, &opts)?;
    Ok(row_from_outcome(name, load, &out))
}

fn point_row(name: &str, plan: &ExecPlan, load: Option<f64>) -> ScenarioRow {
    let opts = RunOptions {
        load,
        ..RunOptions::default()
    };
    let out = run(plan, &opts).expect("scenario campaign point");
    row_from_outcome(name, load, &out)
}

fn row_from_outcome(name: &str, load: Option<f64>, out: &ScenarioOutcome) -> ScenarioRow {
    ScenarioRow {
        scenario: name.to_string(),
        load: load.unwrap_or(0.0),
        offered_rate: out.offered_rate,
        accepted_rate: out.accepted_rate,
        avg_latency: out.avg_latency,
        p50: out.p50,
        p95: out.p95,
        p99: out.p99,
        p999: out.p999,
        max_source_queue: out.max_source_queue,
        offered: out.offered,
        delivered: out.delivered,
        drops: out.drops,
        saturated: out.accepted_rate < 0.95 * out.offered_rate,
    }
}

/// Runs the campaign for `src` across `threads` workers, one point per
/// sweep load (or a single point when the scenario has no sweep).
/// Results are in sweep order and byte-identical at any thread count.
///
/// # Errors
///
/// Returns [`ScenarioError`] when `src` does not parse or compile.
pub fn scenario_sweep_par(
    name: &str,
    src: &str,
    threads: usize,
) -> Result<Vec<ScenarioRow>, ScenarioError> {
    let plan = load_scenario(src)?;
    let loads = campaign_loads(&plan);
    Ok(crate::parallel::run_indexed(loads.len(), threads, |i| {
        point_row(name, &plan, loads[i])
    }))
}

/// Decodes a journaled [`ScenarioRow`] (inverse of its
/// [`ToJson`](crate::jsonrows::ToJson) encoding).
pub fn scenario_row_from_json(v: &Value) -> Option<ScenarioRow> {
    Some(ScenarioRow {
        scenario: v.get("scenario")?.as_str()?.to_string(),
        load: v.get("load")?.as_f64()?,
        offered_rate: v.get("offered_rate")?.as_f64()?,
        accepted_rate: v.get("accepted_rate")?.as_f64()?,
        avg_latency: v.get("avg_latency")?.as_f64()?,
        p50: v.get("p50")?.as_f64()?,
        p95: v.get("p95")?.as_f64()?,
        p99: v.get("p99")?.as_f64()?,
        p999: v.get("p999")?.as_f64()?,
        max_source_queue: v.get("max_source_queue")?.as_u64()?,
        offered: v.get("offered")?.as_u64()?,
        delivered: v.get("delivered")?.as_u64()?,
        drops: v.get("drops")?.as_u64()?,
        saturated: v.get("saturated")?.as_bool()?,
    })
}

/// [`scenario_sweep_par`] with a checkpoint journal at `path`: completed
/// points are appended as JSON lines and replayed on re-entry, so a
/// killed campaign resumes where it left off and still returns the same
/// rows an uninterrupted run does.
///
/// # Errors
///
/// Returns an I/O error when the scenario does not load or the journal
/// cannot be opened.
pub fn scenario_sweep_checkpointed(
    name: &str,
    src: &str,
    threads: usize,
    path: &Path,
) -> std::io::Result<Vec<ScenarioRow>> {
    use crate::jsonrows::ToJson;
    let plan = load_scenario(src).map_err(std::io::Error::other)?;
    let loads = campaign_loads(&plan);
    crate::parallel::run_checkpointed(
        loads.len(),
        threads,
        path,
        ScenarioRow::to_json,
        scenario_row_from_json,
        |i| point_row(name, &plan, loads[i]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonrows::{rows_json, ToJson};

    const SMALL: &str = "grid 4 4; seed 2; warmup 1K; duration 4K; epoch 2K;\n\
                         sweep load 0.05 to 0.15 step 0.05;\n\
                         t=0 uniform load sweep poisson;";

    #[test]
    fn embedded_default_scenario_loads_and_sweeps() {
        let plan = load_scenario(LATENCY_THROUGHPUT_SCN).expect("checked-in scenario");
        assert!(plan.uses_sweep_load());
        assert_eq!(campaign_loads(&plan).len(), 20);
    }

    #[test]
    fn sweep_rows_match_their_loads_and_any_thread_count() {
        let serial = scenario_sweep_par("small", SMALL, 1).unwrap();
        assert_eq!(serial.len(), 3);
        for (r, want) in serial.iter().zip([0.05, 0.1, 0.15]) {
            assert!((r.load - want).abs() < 1e-12);
            assert!(r.offered > 0);
            assert!(!r.saturated, "light loads stay under the knee");
        }
        let par = scenario_sweep_par("small", SMALL, 3).unwrap();
        assert_eq!(serial, par, "threads never change campaign output");
    }

    #[test]
    fn bad_scenario_source_is_an_error() {
        assert!(scenario_sweep_par("bad", "grid 99;", 1).is_err());
        assert!(scenario_sweep_par("bad", "t=0 uniform load sweep;", 1).is_err());
    }

    #[test]
    fn rows_round_trip_through_json() {
        let rows = scenario_sweep_par("small", SMALL, 1).unwrap();
        for r in &rows {
            let decoded = scenario_row_from_json(&r.to_json()).expect("decode");
            assert_eq!(&decoded, r);
        }
        assert!(rows_json(&rows)
            .to_string_compact()
            .contains("\"load\":0.1"));
    }

    #[test]
    fn checkpointed_campaign_survives_a_kill_and_resume() {
        let path =
            std::env::temp_dir().join(format!("adaptnoc-scn-ckpt-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let full = scenario_sweep_checkpointed("small", SMALL, 1, &path).unwrap();
        assert_eq!(full.len(), 3);

        // Simulate a mid-campaign kill: keep one journal line plus a torn
        // tail, then resume on a different thread count.
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        std::fs::write(&path, format!("{first}\n{{\"i\":2,\"v\":{{\"sc")).unwrap();
        let resumed = scenario_sweep_checkpointed("small", SMALL, 2, &path).unwrap();
        assert_eq!(
            rows_json(&resumed).to_string_compact(),
            rows_json(&full).to_string_compact(),
            "resume reproduces the uninterrupted campaign byte for byte"
        );
        let _ = std::fs::remove_file(&path);
    }
}

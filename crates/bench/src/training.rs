//! Offline DQN training (Sec. III-E).
//!
//! "We use an off-line training for this work... the training set includes
//! a wide range of application phases, and the model is trained under
//! different network configurations (2x4, 4x4, 4x6, 4x8, 8x8)." Episodes
//! cycle through single-region scenarios of those sizes running different
//! profiles; the agent decides each epoch with elevated exploration,
//! observes the Eq.-2 reward, and is trained densely on the replay buffer
//! between episodes. Deployment keeps only the prediction network.

use crate::harness::{traffic_hint, RunConfig};
use adaptnoc_core::prelude::*;
use adaptnoc_power::energy::EnergyModel;
use adaptnoc_rl::dqn::{DqnAgent, DqnConfig, TrainedPolicy};
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;

/// One training scenario: a region size and an application profile.
#[derive(Debug, Clone)]
pub struct TrainScenario {
    /// Region footprint.
    pub rect: Rect,
    /// Application run in it.
    pub profile: AppProfile,
}

/// The paper's training-region sizes: 2x4, 4x4, 4x6, 4x8, 8x8.
pub fn paper_training_rects() -> Vec<Rect> {
    vec![
        Rect::new(0, 0, 2, 4),
        Rect::new(0, 0, 4, 4),
        Rect::new(0, 0, 4, 6),
        Rect::new(0, 0, 4, 8),
        Rect::new(0, 0, 8, 8),
    ]
}

/// Builds the default training set: every size crossed with a spread of
/// CPU and GPU profiles.
pub fn default_scenarios() -> Vec<TrainScenario> {
    let apps = ["BS", "CA", "FL", "KM", "BP", "NW"];
    let mut out = Vec::new();
    for rect in paper_training_rects() {
        for name in apps {
            out.push(TrainScenario {
                rect,
                profile: by_name(name).unwrap(),
            });
        }
    }
    out
}

/// Training knobs.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Episodes (scenario visits).
    pub episodes: usize,
    /// Epochs simulated per episode.
    pub epochs_per_episode: u64,
    /// Epoch length in cycles during training (shorter than deployment to
    /// keep offline training tractable; decisions and rewards scale).
    pub epoch_cycles: u64,
    /// Exploration rate during training.
    pub train_epsilon: f64,
    /// Exploration rate deployed (paper: 0.05).
    pub deploy_epsilon: f64,
    /// Extra replay-training iterations between episodes.
    pub train_iters_between: usize,
    /// Training learning rate. The paper uses 1e-4 with a far longer
    /// offline budget; scaled up here to converge within this harness's
    /// episode count.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            episodes: 48,
            epochs_per_episode: 10,
            epoch_cycles: 8_000,
            train_epsilon: 0.35,
            deploy_epsilon: 0.05,
            train_iters_between: 120,
            learning_rate: 2e-3,
            seed: 7,
        }
    }
}

impl TrainConfig {
    /// A very small configuration for tests.
    pub fn tiny() -> Self {
        TrainConfig {
            episodes: 4,
            epochs_per_episode: 3,
            epoch_cycles: 3_000,
            train_iters_between: 10,
            ..Default::default()
        }
    }
}

/// Trains one DQN over the scenarios and returns the deployable policy.
///
/// # Errors
///
/// Propagates [`ControlError`] from episode construction.
///
/// # Panics
///
/// Panics if `scenarios` is empty.
pub fn train_dqn(
    scenarios: &[TrainScenario],
    tc: &TrainConfig,
    dqn_cfg: Option<DqnConfig>,
) -> Result<TrainedPolicy, ControlError> {
    assert!(!scenarios.is_empty(), "need at least one scenario");
    let cfg = DqnConfig {
        epsilon: tc.train_epsilon,
        learning_rate: tc.learning_rate,
        ..dqn_cfg.unwrap_or_default()
    };
    let mut agent = Some(DqnAgent::new(cfg, tc.seed));

    for ep in 0..tc.episodes {
        let scenario = &scenarios[ep % scenarios.len()];
        let layout = ChipLayout::single(scenario.rect, scenario.profile.class == AppClass::Gpu);
        let rc = RunConfig {
            epoch_cycles: tc.epoch_cycles,
            seed: tc.seed + ep as u64,
            ..Default::default()
        };
        let hint = traffic_hint(&layout, std::slice::from_ref(&scenario.profile));
        let mut design = Design::build(
            DesignKind::AdaptNoc,
            layout.clone(),
            &hint,
            vec![TopologyPolicy::Learning(agent.take().unwrap())],
            rc.seed,
        )?;
        let mut wl = Workload::new(&layout, std::slice::from_ref(&scenario.profile), rc.seed);
        wl.set_endless();
        let model = EnergyModel::new(design.net.config());

        let mut cycle = 0u64;
        let mut epochs = 0u64;
        while epochs < tc.epochs_per_episode {
            wl.tick(&mut design.net);
            design.net.step();
            design.tick()?;
            cycle += 1;
            if cycle.is_multiple_of(tc.epoch_cycles) {
                epochs += 1;
                let (report, telemetry) = wl.epoch_telemetry(&mut design.net, &layout, &model);
                design.on_epoch(&report, &telemetry)?;
            }
        }

        // Take the agent back out of the controller.
        let ctl = design.controller_mut().expect("adaptive design");
        let policy = std::mem::replace(
            &mut ctl.regions[0].policy,
            TopologyPolicy::Fixed(TopologyKind::Mesh),
        );
        let mut a = match policy {
            TopologyPolicy::Learning(a) => a,
            _ => unreachable!("training design uses a learning policy"),
        };
        for _ in 0..tc.train_iters_between {
            let _ = a.train_step();
        }
        agent = Some(a);
    }

    Ok(agent
        .take()
        .unwrap()
        .into_policy()
        .with_epsilon(tc.deploy_epsilon))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_training_sizes() {
        let rects = paper_training_rects();
        let dims: Vec<(u8, u8)> = rects.iter().map(|r| (r.w, r.h)).collect();
        assert_eq!(dims, vec![(2, 4), (4, 4), (4, 6), (4, 8), (8, 8)]);
    }

    #[test]
    fn default_scenarios_cover_sizes_and_classes() {
        let s = default_scenarios();
        assert_eq!(s.len(), 30);
        assert!(s.iter().any(|x| x.profile.class == AppClass::Cpu));
        assert!(s.iter().any(|x| x.profile.class == AppClass::Gpu));
    }

    #[test]
    fn tiny_training_produces_policy() {
        let scenarios = vec![TrainScenario {
            rect: Rect::new(0, 0, 4, 4),
            profile: by_name("CA").unwrap(),
        }];
        let policy = train_dqn(&scenarios, &TrainConfig::tiny(), None).unwrap();
        // The policy must produce a valid action.
        let state = vec![0.4; 12];
        assert!(policy.decide_greedy(&state) < 4);
    }
}

//! Fault-sweep campaign: resilience metrics under seeded fault schedules.
//!
//! Four scenarios on a 4x4 mesh subNoC — a transient burst, a single
//! permanent link loss, a mixed schedule, and a router loss — each run for
//! every requested seed with the same closed-loop stride workload. The
//! whole campaign is deterministic: the same seed list always produces
//! byte-identical rows.

use adaptnoc_core::reconfig::ReconfigTiming;
use adaptnoc_faults::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_topology::prelude::*;

/// One scenario x seed result row.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Scenario name (`transient-burst`, `single-link`, `mixed`,
    /// `router-down`).
    pub scenario: String,
    /// Schedule seed.
    pub seed: u64,
    /// Packets offered by the workload.
    pub offered: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// `delivered / offered`.
    pub delivery_ratio: f64,
    /// Packets NACKed back to their source NI.
    pub nacks: u64,
    /// Packet re-injections after a NACK.
    pub retries: u64,
    /// Packets dropped (retry budget exhausted or endpoint disconnected).
    pub drops: u64,
    /// Completed permanent-fault recoveries.
    pub recoveries: u64,
    /// Mean cycles from fault strike to recovered configuration (0 when no
    /// recovery ran).
    pub mean_time_to_recover: f64,
    /// Average end-to-end packet latency over the whole run.
    pub avg_packet_latency: f64,
    /// Nodes left disconnected at the end of the run.
    pub disconnected: u64,
}

fn scenario_params(name: &str) -> ScheduleParams {
    let base = ScheduleParams {
        transients: 0,
        permanent_links: 0,
        router_faults: 0,
        window_start: 300,
        window_end: 900,
        min_duration: 30,
        max_duration: 120,
    };
    match name {
        "transient-burst" => ScheduleParams {
            transients: 4,
            ..base
        },
        "single-link" => ScheduleParams {
            permanent_links: 1,
            ..base
        },
        "mixed" => ScheduleParams {
            transients: 2,
            permanent_links: 1,
            ..base
        },
        "router-down" => ScheduleParams {
            router_faults: 1,
            ..base
        },
        other => unreachable!("unknown fault scenario {other}"),
    }
}

/// Runs the fault-sweep campaign for every scenario x seed, serially.
///
/// # Errors
///
/// Propagates [`FaultError`] from the controller (a validation or protocol
/// failure, which indicates a bug rather than an unsurvivable fault).
pub fn fault_sweep(seeds: &[u64]) -> Result<Vec<FaultRow>, FaultError> {
    fault_sweep_par(seeds, 1)
}

/// Runs the fault-sweep campaign with the scenario x seed grid fanned
/// across `threads` workers. Every point builds its own network and
/// schedule from its seed, so the rows are byte-identical to
/// [`fault_sweep`] at any thread count.
///
/// # Errors
///
/// Propagates [`FaultError`] from the controller.
pub fn fault_sweep_par(seeds: &[u64], threads: usize) -> Result<Vec<FaultRow>, FaultError> {
    let n = SCENARIOS.len() * seeds.len();
    let rows = crate::parallel::run_indexed(n, threads, |i| {
        run_scenario(SCENARIOS[i / seeds.len()], seeds[i % seeds.len()])
    });
    rows.into_iter().collect()
}

const SCENARIOS: [&str; 4] = ["transient-burst", "single-link", "mixed", "router-down"];

/// Rebuilds a [`FaultRow`] from its [`ToJson`](crate::jsonrows::ToJson)
/// encoding. Numbers pass through `f64` Display/parse, which round-trips
/// exactly, so a replayed row is byte-identical to the freshly computed
/// one.
fn fault_row_from_json(v: &adaptnoc_sim::json::Value) -> Option<FaultRow> {
    Some(FaultRow {
        scenario: v.get("scenario")?.as_str()?.to_string(),
        seed: v.get("seed")?.as_u64()?,
        offered: v.get("offered")?.as_u64()?,
        delivered: v.get("delivered")?.as_u64()?,
        delivery_ratio: v.get("delivery_ratio")?.as_f64()?,
        nacks: v.get("nacks")?.as_u64()?,
        retries: v.get("retries")?.as_u64()?,
        drops: v.get("drops")?.as_u64()?,
        recoveries: v.get("recoveries")?.as_u64()?,
        mean_time_to_recover: v.get("mean_time_to_recover")?.as_f64()?,
        avg_packet_latency: v.get("avg_packet_latency")?.as_f64()?,
        disconnected: v.get("disconnected")?.as_u64()?,
    })
}

/// [`fault_sweep_par`] with a crash-tolerant checkpoint journal at
/// `path` (see [`run_checkpointed`](crate::parallel::run_checkpointed)):
/// completed scenario x seed points are journaled as they finish, a killed
/// sweep resumes from the completed points on the next invocation, and
/// the assembled rows are byte-identical to an uninterrupted run.
///
/// A [`FaultError`] inside a point indicates a bug (see [`fault_sweep`])
/// and panics the sweep; the journal keeps every point completed up to
/// that moment.
///
/// # Errors
///
/// Returns the I/O error if the journal cannot be opened for appending.
pub fn fault_sweep_checkpointed(
    seeds: &[u64],
    threads: usize,
    path: &std::path::Path,
) -> std::io::Result<Vec<FaultRow>> {
    use crate::jsonrows::ToJson;
    let n = SCENARIOS.len() * seeds.len();
    crate::parallel::run_checkpointed(
        n,
        threads,
        path,
        FaultRow::to_json,
        fault_row_from_json,
        |i| {
            run_scenario(SCENARIOS[i / seeds.len()], seeds[i % seeds.len()])
                .expect("fault scenario hit a controller bug")
        },
    )
}

fn run_scenario(scenario: &str, seed: u64) -> Result<FaultRow, FaultError> {
    let grid = Grid::new(4, 4);
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::baseline();
    let spec = mesh_chip(grid, &cfg).expect("mesh build");
    let mut net = Network::new(spec, cfg.clone()).expect("mesh net");
    let schedule = FaultSchedule::random(net.spec(), &grid, rect, &scenario_params(scenario), seed);
    let mut ctl = FaultController::new(
        schedule,
        RetryPolicy::default(),
        grid,
        rect,
        cfg,
        ReconfigTiming::default(),
    );

    let mut next_id = 1u64;
    for _ in 0..6_000u64 {
        let now = net.now();
        if now < 2_000 && now.is_multiple_of(6) {
            let dead = ctl.disconnected();
            for i in 0..16u16 {
                let (src, dst) = (NodeId(i), NodeId((i + 5) % 16));
                // Cores on disconnected tiles stop generating traffic.
                if dead.contains(&src) {
                    continue;
                }
                net.inject(Packet::request(next_id, src, dst, 0))
                    .expect("inject");
                next_id += 1;
            }
        }
        net.step();
        ctl.tick(&mut net)?;
        if now >= 2_000 && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }

    let s = net.totals().stats;
    let st = ctl.stats();
    let ttr: Vec<u64> = st.recoveries.iter().map(|r| r.time_to_recover()).collect();
    let mean_ttr = if ttr.is_empty() {
        0.0
    } else {
        ttr.iter().sum::<u64>() as f64 / ttr.len() as f64
    };
    Ok(FaultRow {
        scenario: scenario.to_string(),
        seed,
        offered: s.packets_offered,
        delivered: s.packets,
        delivery_ratio: s.delivery_ratio(),
        nacks: s.nacks,
        retries: s.retries,
        drops: s.drops,
        recoveries: st.recoveries.len() as u64,
        mean_time_to_recover: mean_ttr,
        avg_packet_latency: s.avg_packet_latency(),
        disconnected: ctl.disconnected().len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_transients_lose_nothing() {
        let a = fault_sweep(&[9]).unwrap();
        let b = fault_sweep(&[9]).unwrap();
        assert_eq!(a, b, "same seeds must give byte-identical rows");
        assert_eq!(a.len(), 4);
        let transient = &a[0];
        assert_eq!(transient.scenario, "transient-burst");
        assert_eq!(transient.drops, 0);
        assert!((transient.delivery_ratio - 1.0).abs() < 1e-12);
        let single = &a[1];
        assert_eq!(single.scenario, "single-link");
        assert_eq!(single.recoveries, 1);
        assert!(single.mean_time_to_recover > 0.0);
    }

    #[test]
    fn checkpointed_sweep_survives_a_mid_run_kill() {
        use crate::jsonrows::{rows_json, ToJson};
        let path =
            std::env::temp_dir().join(format!("adaptnoc-fault-sweep-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let reference = fault_sweep(&[9]).unwrap();
        let full = fault_sweep_checkpointed(&[9], 1, &path).unwrap();
        assert_eq!(full, reference, "journaled sweep matches the plain one");

        // Simulate a kill after two of the four points: truncate the
        // journal and append a torn half-written line.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        let kept: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(
            &path,
            format!("{}\n{{\"i\":3,\"v\":{{\"sc", kept.join("\n")),
        )
        .unwrap();

        let resumed = fault_sweep_checkpointed(&[9], 2, &path).unwrap();
        assert_eq!(
            resumed, reference,
            "resumed rows match the uninterrupted run"
        );
        assert_eq!(
            rows_json(&resumed).to_string_compact(),
            rows_json(&reference).to_string_compact(),
            "JSON output is byte-identical after the kill/resume cycle"
        );
        // Rebuilding every row from its journal encoding is lossless.
        for row in &reference {
            assert_eq!(fault_row_from_json(&row.to_json()).as_ref(), Some(row));
        }
        let _ = std::fs::remove_file(&path);
    }
}

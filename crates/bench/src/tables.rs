//! Regeneration of the paper's overhead analyses (Sec. V-B) and the
//! Sec. II-C1 reconfiguration-latency walkthrough.

use adaptnoc_core::prelude::*;
use adaptnoc_power::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_topology::ftby::ftby_chip;
use adaptnoc_topology::prelude::*;

/// Sec. V-B1: the area table.
#[derive(Debug, Clone)]
pub struct AreaTable {
    /// Baseline 8x8 mesh NoC area, mm² (paper: 17.27).
    pub baseline_mm2: f64,
    /// Adapt-NoC total area, mm².
    pub adapt_mm2: f64,
    /// Adapt-NoC extras (ports + RL + muxes/links), mm² (paper: ~1.67).
    pub extras_mm2: f64,
    /// Area saving vs baseline (paper: 14%).
    pub saving_fraction: f64,
}

/// Computes the area table.
pub fn area_table() -> AreaTable {
    let base = baseline_8x8_area();
    let adapt = adapt_8x8_area();
    AreaTable {
        baseline_mm2: base.total_mm2(),
        adapt_mm2: adapt.total_mm2(),
        extras_mm2: adapt.extras_mm2,
        saving_fraction: adapt_area_saving_fraction(),
    }
}

/// Sec. V-B2: per-topology wiring usage vs the metal-stack budget.
#[derive(Debug, Clone)]
pub struct WiringRow {
    /// Topology name.
    pub topology: String,
    /// Max unidirectional channels crossing any tile edge.
    pub max_channels_per_edge: u32,
    /// Max adaptable/express channels crossing any tile edge.
    pub max_express_per_edge: u32,
    /// Whether the usage fits the 45 nm budget.
    pub fits_budget: bool,
}

/// Computes wiring usage for each composed topology on the 8x8 chip.
///
/// # Errors
///
/// Propagates [`BuildError`] from spec construction.
pub fn wiring_table() -> Result<(WiringBudget, Vec<WiringRow>), BuildError> {
    let grid = Grid::paper();
    let cfg = SimConfig::adapt_noc();
    let budget = paper_budget();
    let mut rows = Vec::new();
    for kind in [
        TopologyKind::Mesh,
        TopologyKind::Cmesh,
        TopologyKind::Torus,
        TopologyKind::Tree,
        TopologyKind::TorusTree,
        TopologyKind::ExpressMesh,
    ] {
        let spec = build_chip_spec(
            grid,
            &[RegionTopology::new(Rect::new(0, 0, 8, 8), kind)],
            &cfg,
        )?;
        let usage = analyze_wiring(&spec, grid.width, grid.height);
        rows.push(WiringRow {
            topology: kind.name().to_string(),
            max_channels_per_edge: usage.max_channels_per_edge,
            max_express_per_edge: usage.max_express_channels_per_edge,
            fits_budget: usage.fits(&budget),
        });
    }
    Ok((budget, rows))
}

/// Sec. V-B3: the timing table.
#[derive(Debug, Clone)]
pub struct TimingTable {
    /// Conventional router stage delays, ps (RC, VA, SA, ST).
    pub conventional_ps: [f64; 4],
    /// Adaptable router with merged muxes, ps.
    pub adaptable_ps: [f64; 4],
    /// Both meet the same max frequency (GHz).
    pub max_freq_ghz: f64,
    /// High-metal wire delay for a 4 mm segment, ps.
    pub wire_4mm_ps: f64,
    /// Extra delay of a reversed segment, ps.
    pub reversed_extra_ps: f64,
    /// DQN inference latency, ns (paper: 486).
    pub dqn_ns: f64,
}

/// Computes the timing table.
pub fn timing_table() -> TimingTable {
    let conv = RouterTiming::conventional();
    let adapt = RouterTiming::adaptable_merged();
    TimingTable {
        conventional_ps: [conv.rc_ps, conv.va_ps, conv.sa_ps, conv.st_ps],
        adaptable_ps: [adapt.rc_ps, adapt.va_ps, adapt.sa_ps, adapt.st_ps],
        max_freq_ghz: adapt.max_freq_ghz(),
        wire_4mm_ps: wire_delay_ps(4.0, MetalLayer::High, false),
        reversed_extra_ps: wire_delay_ps(1.0, MetalLayer::High, true)
            - wire_delay_ps(1.0, MetalLayer::High, false),
        dqn_ns: paper_dqn_latency_ns(),
    }
}

/// Sec. V-A1 scalability argument: FTBY's wiring density grows
/// quadratically with network size (at 16x16 its channel width must be
/// halved, costing +85% queuing in the paper), while Adapt-NoC needs only
/// one adaptable link per row/column at any size.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Grid size label.
    pub size: String,
    /// Design name.
    pub design: String,
    /// Max unidirectional channels crossing any tile edge.
    pub max_channels_per_edge: u32,
    /// Whether the full-width (256-bit) channels fit the metal budget.
    pub fits_budget: bool,
}

/// Computes wiring usage of FTBY vs the Adapt-NoC torus (the densest
/// composed topology) at 8x8 and 16x16.
///
/// # Errors
///
/// Propagates [`BuildError`] from spec construction.
pub fn scalability_table() -> Result<Vec<ScalabilityRow>, BuildError> {
    let budget = paper_budget();
    let mut rows = Vec::new();
    for n in [8u8, 16] {
        let grid = Grid::new(n, n);
        let ftby = ftby_chip(grid, &SimConfig::flattened_butterfly())?;
        let usage = analyze_wiring(&ftby, n, n);
        rows.push(ScalabilityRow {
            size: format!("{n}x{n}"),
            design: "ftby".into(),
            max_channels_per_edge: usage.max_channels_per_edge,
            fits_budget: usage.fits(&budget),
        });
        let adapt = build_chip_spec(
            grid,
            &[RegionTopology::new(
                Rect::new(0, 0, n, n),
                TopologyKind::Torus,
            )],
            &SimConfig::adapt_noc(),
        )?;
        let usage = analyze_wiring(&adapt, n, n);
        rows.push(ScalabilityRow {
            size: format!("{n}x{n}"),
            design: "adapt-torus".into(),
            max_channels_per_edge: usage.max_channels_per_edge,
            fits_budget: usage.fits(&budget),
        });
    }
    Ok(rows)
}

/// One topology-transition latency measurement (Sec. II-C1 walkthrough).
#[derive(Debug, Clone)]
pub struct ReconfigRow {
    /// Source topology.
    pub from: String,
    /// Target topology.
    pub to: String,
    /// Measured protocol latency in cycles on an idle 4x4 subNoC.
    pub cycles: u64,
    /// Whether the fast (no-drain) path applied.
    pub fast_path: bool,
}

/// Measures the reconfiguration latency of every topology transition on an
/// idle 4x4 subNoC.
///
/// # Errors
///
/// Propagates [`ControlError`] from the protocol.
pub fn reconfig_table() -> Result<Vec<ReconfigRow>, ControlError> {
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let spec_of = |kind: TopologyKind| {
        build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg).map_err(ControlError::Build)
    };
    let mut rows = Vec::new();
    for from in TopologyKind::ACTIONS {
        for to in TopologyKind::ACTIONS {
            if from == to {
                continue;
            }
            let mut net =
                Network::new(spec_of(from)?, cfg.clone()).map_err(ControlError::Network)?;
            let fast = keeps_mesh(from) && keeps_mesh(to);
            let transitional = if fast {
                Some(spec_of(TopologyKind::Mesh)?.tables)
            } else {
                None
            };
            let mut rc = RegionReconfig::start(
                &net,
                &grid,
                rect,
                spec_of(to)?,
                transitional,
                ReconfigTiming::default(),
            );
            let mut done = false;
            for _ in 0..50_000 {
                net.step();
                if rc.tick(&mut net, &grid).map_err(ControlError::Network)? {
                    done = true;
                    break;
                }
            }
            assert!(done, "reconfig {from}->{to} did not complete");
            rows.push(ReconfigRow {
                from: from.name().to_string(),
                to: to.name().to_string(),
                cycles: rc.latency(net.now()),
                fast_path: fast,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_table_matches_paper_regime() {
        let t = area_table();
        assert!((t.baseline_mm2 - 17.27).abs() < 0.05);
        assert!(t.adapt_mm2 < t.baseline_mm2);
        assert!((0.10..=0.25).contains(&t.saving_fraction));
    }

    #[test]
    fn wiring_fits_budget_for_all_topologies() {
        let (budget, rows) = wiring_table().unwrap();
        assert_eq!(budget.high_metal_links, 2);
        assert_eq!(budget.intermediate_links, 7);
        for r in &rows {
            assert!(r.fits_budget, "{} exceeds the wiring budget", r.topology);
            // The paper: at most four bidirectional links per tile edge.
            assert!(
                r.max_channels_per_edge <= 8,
                "{}: {}",
                r.topology,
                r.max_channels_per_edge
            );
        }
    }

    #[test]
    fn timing_table_meets_frequency() {
        let t = timing_table();
        assert!(t.max_freq_ghz >= 1.0);
        assert!(t.adaptable_ps[0] < t.adaptable_ps[1], "RC+mux under VA");
        assert!(t.adaptable_ps[3] < t.adaptable_ps[1], "ST+mux under VA");
        assert!((t.dqn_ns - 486.0).abs() / 486.0 < 0.05);
    }

    #[test]
    fn ftby_wiring_explodes_at_16x16_but_adapt_scales() {
        // Sec. V-A1: "the channel bandwidth of FTBY has to be reduced when
        // network size increases to 16x16, as the wiring density of FTBY
        // increases quadratically... Adapt-NoC only requires one adaptable
        // link in each row/column".
        let rows = scalability_table().unwrap();
        let get = |size: &str, design: &str| {
            rows.iter()
                .find(|r| r.size == size && r.design == design)
                .unwrap()
        };
        assert!(get("8x8", "ftby").fits_budget, "paper: FTBY fits at 8x8");
        assert!(
            !get("16x16", "ftby").fits_budget,
            "paper: FTBY exceeds the budget at 16x16"
        );
        assert!(get("16x16", "adapt-torus").fits_budget);
        // Quadratic growth in FTBY density.
        assert!(
            get("16x16", "ftby").max_channels_per_edge
                >= get("8x8", "ftby").max_channels_per_edge * 2
        );
    }

    #[test]
    fn reconfig_latencies_follow_the_walkthrough() {
        let rows = reconfig_table().unwrap();
        assert_eq!(rows.len(), 12);
        let timing = ReconfigTiming::default();
        let min = timing.notify_cycles(Rect::new(0, 0, 4, 4)) + timing.t_s;
        for r in &rows {
            assert!(
                r.cycles >= min,
                "{}->{}: {} < {min}",
                r.from,
                r.to,
                r.cycles
            );
            // Idle-network reconfigurations complete promptly.
            assert!(r.cycles < 2_000, "{}->{}: {}", r.from, r.to, r.cycles);
        }
        // Fast paths exist exactly between mesh-keeping topologies.
        let fast_count = rows.iter().filter(|r| r.fast_path).count();
        assert_eq!(fast_count, 6, "mesh/torus/tree pairwise transitions");
    }
}

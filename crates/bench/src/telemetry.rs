//! Telemetry probe: short deterministic instrumented runs whose merged
//! registry backs `gen-figures --metrics-out DIR` and `speed --metrics`.
//!
//! Campaign points deliberately run with telemetry off (their JSON output
//! is byte-identical across thread counts and must stay that way), so the
//! exporter files are produced by two dedicated probe runs under
//! [`TelemetryMode::Strict`]:
//!
//! 1. an RL-controlled single-region run (simulator + RL metrics), and
//! 2. a mixed fault-schedule run (fault and recovery metrics).
//!
//! Both are seeded and cycle-bounded, so the counter/gauge/histogram and
//! event portions of the merged snapshot are deterministic; only the
//! wall-clock span durations vary between hosts.

use adaptnoc_core::prelude::*;
use adaptnoc_faults::prelude::*;
use adaptnoc_rl::state::Observation;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::telemetry::{json_lines, prometheus, Registry, TelemetryMode};
use adaptnoc_topology::prelude::*;
use std::path::{Path, PathBuf};

/// Runs both probe scenarios under [`TelemetryMode::Strict`] and returns
/// the merged registry, covering the simulator, fault, and RL metric
/// families of `docs/OBSERVABILITY.md`.
pub fn telemetry_probe() -> Registry {
    let mut reg = rl_probe();
    reg.merge(&fault_probe());
    reg
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// `.tmp`-suffixed sibling first and are renamed into place, so a reader
/// (or a Ctrl-C mid-write) never sees a partial file — it sees either
/// the previous complete version or the new one.
///
/// # Errors
///
/// Propagates I/O errors from the temporary write or the rename.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Writes the registry as `telemetry.jsonl` (JSON-lines) and
/// `telemetry.prom` (Prometheus text exposition 0.0.4) under `dir`,
/// creating the directory if needed. Returns both paths.
///
/// Both files are written atomically ([`atomic_write`]), so an
/// interrupted `gen-figures --metrics-out` run never leaves a torn
/// exporter file behind.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or file writes.
pub fn write_metrics(dir: &Path, reg: &Registry) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let jsonl = dir.join("telemetry.jsonl");
    let prom = dir.join("telemetry.prom");
    atomic_write(&jsonl, &json_lines(reg))?;
    atomic_write(&prom, &prometheus(reg))?;
    Ok((jsonl, prom))
}

/// A three-epoch adaptive run on a single 4x4 region: exercises the
/// per-epoch simulator flush, the packet-latency histograms, and the RL
/// reward gauges / decision counters.
fn rl_probe() -> Registry {
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
    let region_nodes: Vec<NodeId> = layout.regions[0]
        .rect
        .iter()
        .map(|c| layout.grid.node(c))
        .collect();
    let mut ctl = AdaptController::new(
        layout,
        vec![TopologyPolicy::Fixed(TopologyKind::Torus)],
        SimConfig::adapt_noc(),
        7,
    );
    let spec = ctl.initial_spec().expect("initial spec");
    let mut net = Network::new(spec, SimConfig::adapt_noc()).expect("probe network");
    net.set_telemetry_mode(TelemetryMode::Strict);

    let mut next_id = 1u64;
    for epoch in 0..3u64 {
        for _ in 0..600u64 {
            let now = net.now();
            if now < 400 + epoch * 600 && now.is_multiple_of(8) {
                for (i, &src) in region_nodes.iter().enumerate() {
                    let dst = region_nodes[(i + 3) % region_nodes.len()];
                    net.inject(Packet::request(next_id, src, dst, 0))
                        .expect("probe inject");
                    next_id += 1;
                }
            }
            net.step();
            ctl.tick(&mut net).expect("controller tick");
        }
        let report = net.take_epoch();
        let t = RegionTelemetry {
            obs: Observation::default(),
            power_w: 0.4 + 0.1 * epoch as f64,
            network_latency: report.stats.avg_network_latency(),
            queuing_latency: report.stats.avg_queuing_latency(),
        };
        ctl.on_epoch(&mut net, &[t]).expect("epoch boundary");
    }
    for _ in 0..4_000u64 {
        if net.in_flight() == 0 {
            break;
        }
        net.step();
        ctl.tick(&mut net).expect("controller tick");
    }
    let _ = net.take_epoch();
    net.telemetry().expect("strict telemetry attached").clone()
}

/// The fault sweep's `mixed` scenario (transients + a permanent link) with
/// telemetry attached: exercises fault-injection counters, retry/drop
/// accounting, and the time-to-recover histogram.
fn fault_probe() -> Registry {
    let grid = Grid::new(4, 4);
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::baseline();
    let spec = mesh_chip(grid, &cfg).expect("mesh build");
    let mut net = Network::new(spec, cfg.clone()).expect("mesh net");
    net.set_telemetry_mode(TelemetryMode::Strict);
    let params = ScheduleParams {
        transients: 2,
        permanent_links: 1,
        router_faults: 0,
        window_start: 300,
        window_end: 900,
        min_duration: 30,
        max_duration: 120,
    };
    let schedule = FaultSchedule::random(net.spec(), &grid, rect, &params, 9);
    let mut ctl = FaultController::new(
        schedule,
        RetryPolicy::default(),
        grid,
        rect,
        cfg,
        ReconfigTiming::default(),
    );

    let mut next_id = 1u64;
    for _ in 0..6_000u64 {
        let now = net.now();
        if now < 2_000 && now.is_multiple_of(6) {
            let dead = ctl.disconnected();
            for i in 0..16u16 {
                let (src, dst) = (NodeId(i), NodeId((i + 5) % 16));
                if dead.contains(&src) {
                    continue;
                }
                net.inject(Packet::request(next_id, src, dst, 0))
                    .expect("probe inject");
                next_id += 1;
            }
        }
        net.step();
        ctl.tick(&mut net).expect("fault controller tick");
        if now >= 2_000 && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }
    let _ = net.take_epoch();
    net.telemetry().expect("strict telemetry attached").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value(snapshot: &adaptnoc_sim::telemetry::Snapshot, name: &str) -> u64 {
        snapshot
            .counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    #[test]
    fn probe_covers_sim_fault_and_rl_metrics() {
        let reg = telemetry_probe();
        let snap = reg.snapshot();
        assert!(sample_value(&snap, "adaptnoc_sim_packets_total") > 0);
        assert!(sample_value(&snap, "adaptnoc_faults_injected_total") > 0);
        assert!(sample_value(&snap, "adaptnoc_rl_decisions_total") > 0);
        assert!(
            snap.gauges
                .iter()
                .any(|g| g.name == "adaptnoc_rl_reward_power_watts"),
            "reward gauges present"
        );
        assert!(
            snap.histograms
                .iter()
                .any(|h| h.name == "adaptnoc_faults_time_to_recover_cycles" && h.count > 0),
            "a permanent-link recovery completed"
        );
    }

    #[test]
    fn probe_counters_are_deterministic() {
        let a = telemetry_probe().snapshot();
        let b = telemetry_probe().snapshot();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.histograms, b.histograms);
        assert_eq!(a.events, b.events);
    }
}

//! Tiny wall-clock micro-benchmark harness for the `harness = false`
//! benches (no external benchmarking crates in the offline build).

use std::time::Instant;

/// Runs `f` for `iters` timed iterations (after one warmup) and prints
/// mean/min wall-clock time per iteration.
pub fn bench<T>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> T) {
    let _ = f(); // warmup
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{group}/{name:<24} mean {:>10.3} ms   min {:>10.3} ms   ({iters} iters)",
        mean * 1e3,
        min * 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_expected_times() {
        let mut count = 0;
        bench("t", "counter", 3, || count += 1);
        assert_eq!(count, 4); // 1 warmup + 3 timed
    }
}

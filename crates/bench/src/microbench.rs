//! Tiny wall-clock micro-benchmark harness for the `harness = false`
//! benches (no external benchmarking crates in the offline build), plus
//! the telemetry-overhead probe backing the perf-smoke gate.

use adaptnoc_core::prelude::ChipLayout;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::telemetry::TelemetryMode;
use adaptnoc_topology::prelude::mesh_chip;
use std::time::Instant;

/// Runs `f` for `iters` timed iterations (after one warmup) and prints
/// mean/min wall-clock time per iteration.
pub fn bench<T>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> T) {
    let _ = f(); // warmup
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{group}/{name:<24} mean {:>10.3} ms   min {:>10.3} ms   ({iters} iters)",
        mean * 1e3,
        min * 1e3
    );
}

/// Measures idle-network stepping throughput (the simulator's hottest
/// path: the active-set scheduler with nothing to do) under each
/// telemetry mode on the paper's mixed chip. Returns
/// `(mode label, kilocycles/sec)` rows for `off`, `sampled:1024`, and
/// `strict`, each the best of three trials so a scheduler hiccup cannot
/// fake a regression.
///
/// Telemetry is attached explicitly with
/// [`Network::set_telemetry_mode`], so an `ADAPTNOC_TELEMETRY` override
/// in the environment cannot skew the comparison. The perf-smoke CI gate
/// asserts the `off` row is within 5% of an uninstrumented build's idle
/// throughput — this is the "zero cost when disabled" proof.
pub fn telemetry_overhead(cycles: u64) -> Vec<(String, f64)> {
    let layout = ChipLayout::paper_mixed();
    let cfg = SimConfig::baseline();
    let spec = mesh_chip(layout.grid, &cfg).expect("mesh chip");
    [
        TelemetryMode::Off,
        TelemetryMode::Sampled(1024),
        TelemetryMode::Strict,
    ]
    .into_iter()
    .map(|mode| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut net = Network::new(spec.clone(), cfg.clone()).expect("bench net");
            net.set_telemetry_mode(mode);
            let t0 = Instant::now();
            for _ in 0..cycles {
                net.step();
            }
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(net.now());
        }
        (mode.label(), (cycles as f64 / 1_000.0) / best)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_overhead_reports_all_three_modes() {
        let rows = telemetry_overhead(200);
        let labels: Vec<&str> = rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["off", "sampled:1024", "strict"]);
        assert!(rows.iter().all(|&(_, kcps)| kcps > 0.0));
    }

    #[test]
    fn bench_runs_closure_expected_times() {
        let mut count = 0;
        bench("t", "counter", 3, || count += 1);
        assert_eq!(count, 4); // 1 warmup + 3 timed
    }
}

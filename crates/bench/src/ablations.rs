//! Topology-ablation campaign: hold each candidate subNoC topology fixed.
//!
//! The adaptive designs owe their wins to choosing among the four
//! candidate topologies at runtime; this campaign ablates that choice by
//! pinning one topology for the whole run (per seed), quantifying what
//! each candidate contributes on its own. Every `topology x seed` point is
//! an independent simulation, so the campaign fans out over the parallel
//! runner and — like the fault sweep — must stay byte-identical to a
//! serial run.

use crate::harness::{fixed_policies, run_design, RunConfig};
use crate::parallel::run_indexed;
use adaptnoc_core::prelude::*;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;

/// One `topology x seed` ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Pinned topology name.
    pub topology: String,
    /// Workload seed.
    pub seed: u64,
    /// Mean total packet latency, cycles.
    pub packet_latency: f64,
    /// Mean network latency, cycles.
    pub network_latency: f64,
    /// Mean queuing latency, cycles.
    pub queuing_latency: f64,
    /// Mean hop count.
    pub hops: f64,
    /// NoC energy over the measured window, joules.
    pub energy_j: f64,
    /// Delivered packets in the measured window.
    pub delivered: u64,
}

/// Runs the topology ablation (every candidate topology x every seed) on a
/// single 4x4 CPU region, fanning the points across `threads` workers.
///
/// # Errors
///
/// Propagates [`ControlError`] from any run.
pub fn ablation_sweep(
    seeds: &[u64],
    rc: &RunConfig,
    threads: usize,
) -> Result<Vec<AblationRow>, ControlError> {
    let kinds = TopologyKind::ACTIONS;
    let n = kinds.len() * seeds.len();
    let rows = run_indexed(n, threads, |i| {
        let kind = kinds[i / seeds.len()];
        let seed = seeds[i % seeds.len()];
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profiles = vec![by_name("BS").expect("known app")];
        let r = run_design(
            DesignKind::AdaptNocNoRl,
            &layout,
            &profiles,
            fixed_policies(&[kind]),
            &RunConfig { seed, ..*rc },
        )?;
        Ok(AblationRow {
            topology: kind.name().to_string(),
            seed,
            packet_latency: r.packet_latency(),
            network_latency: r.network_latency,
            queuing_latency: r.queuing_latency,
            hops: r.hops,
            energy_j: r.energy.total_j(),
            delivered: r.apps.iter().map(|a| a.delivered).sum(),
        })
    });
    rows.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_topologies_per_seed() {
        let rc = RunConfig {
            epoch_cycles: 3_000,
            epochs: 1,
            warmup_epochs: 1,
            ..Default::default()
        };
        let rows = ablation_sweep(&[3, 4], &rc, 1).unwrap();
        assert_eq!(rows.len(), TopologyKind::ACTIONS.len() * 2);
        for r in &rows {
            assert!(r.packet_latency > 0.0, "{} produced no latency", r.topology);
            assert!(r.delivered > 0);
        }
    }
}

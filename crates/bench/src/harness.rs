//! The experiment harness: runs one design on one workload and collects
//! every metric the paper's figures report.

use adaptnoc_core::prelude::*;
use adaptnoc_power::energy::{EnergyBreakdown, EnergyModel};
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;

/// Scale and measurement parameters of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Reconfiguration epoch length in cycles (50K in the paper).
    pub epoch_cycles: u64,
    /// Measured epochs after warmup.
    pub epochs: u64,
    /// Warmup epochs excluded from statistics.
    pub warmup_epochs: u64,
    /// RNG seed.
    pub seed: u64,
    /// Run until all applications hit their instruction targets
    /// (execution-time and energy experiments).
    pub run_to_completion: bool,
    /// Hard cycle cap.
    pub max_cycles: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            epoch_cycles: 50_000,
            epochs: 4,
            warmup_epochs: 1,
            seed: 42,
            run_to_completion: false,
            max_cycles: 3_000_000,
        }
    }
}

impl RunConfig {
    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        RunConfig {
            epoch_cycles: 10_000,
            epochs: 2,
            warmup_epochs: 1,
            ..Default::default()
        }
    }
}

/// Per-application metrics of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMetrics {
    /// Benchmark name.
    pub name: String,
    /// Mean network latency, cycles.
    pub network_latency: f64,
    /// Mean queuing latency, cycles.
    pub queuing_latency: f64,
    /// Mean hop count.
    pub hops: f64,
    /// Delivered packets in the measured window.
    pub delivered: u64,
    /// Requests issued.
    pub requests: u64,
}

impl AppMetrics {
    /// Mean total packet latency (network + queuing).
    pub fn packet_latency(&self) -> f64 {
        self.network_latency + self.queuing_latency
    }
}

/// The result of one design/workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Which design ran.
    pub design: DesignKind,
    /// Cycles measured (post-warmup).
    pub cycles: u64,
    /// Delivery-weighted mean network latency, cycles.
    pub network_latency: f64,
    /// Delivery-weighted mean queuing latency, cycles.
    pub queuing_latency: f64,
    /// Delivery-weighted mean hop count.
    pub hops: f64,
    /// NoC energy over the measured window.
    pub energy: EnergyBreakdown,
    /// Completion time when run to completion.
    pub execution_time: Option<u64>,
    /// Per-application metrics.
    pub apps: Vec<AppMetrics>,
    /// Topology-selection breakdown per region (adaptive designs).
    pub selections: Option<Vec<[f64; 4]>>,
    /// Completed reconfigurations (adaptive designs).
    pub reconfigs: u64,
}

impl RunResult {
    /// Mean total packet latency.
    pub fn packet_latency(&self) -> f64 {
        self.network_latency + self.queuing_latency
    }

    /// Energy-delay product over the measured window (J·s).
    pub fn edp(&self) -> f64 {
        let t = self.execution_time.unwrap_or(self.cycles) as f64 * 1e-9;
        self.energy.total_j() * t
    }
}

/// Derives the Shortcut design's traffic hint (core→MC flows weighted by
/// each profile's memory intensity).
pub fn traffic_hint(layout: &ChipLayout, profiles: &[AppProfile]) -> Vec<TrafficWeight> {
    let mut hint = Vec::new();
    for (region, profile) in layout.regions.iter().zip(profiles) {
        let ph = &profile.phases[0];
        let w = ph.mlp as f64 * ph.mc_fraction / (ph.think_time as f64 + 1.0);
        for c in region.rect.iter() {
            let n = layout.grid.node(c);
            if n != region.mc {
                hint.push(TrafficWeight {
                    src: n,
                    dst: region.mc,
                    weight: w,
                });
                hint.push(TrafficWeight {
                    src: region.mc,
                    dst: n,
                    weight: w * 2.0,
                });
            }
        }
    }
    hint
}

/// Runs one design on one workload.
///
/// Adaptive designs need one policy per region; others take an empty
/// vector.
///
/// # Errors
///
/// Propagates [`ControlError`] from design construction or reconfiguration.
pub fn run_design(
    kind: DesignKind,
    layout: &ChipLayout,
    profiles: &[AppProfile],
    policies: Vec<TopologyPolicy>,
    rc: &RunConfig,
) -> Result<RunResult, ControlError> {
    let hint = traffic_hint(layout, profiles);
    let mut design = Design::build(kind, layout.clone(), &hint, policies, rc.seed)?;
    let mut wl = Workload::new(layout, profiles, rc.seed ^ 0x9e3779b9);
    if !rc.run_to_completion {
        // Steady-state measurement: applications must keep generating
        // traffic for the whole window.
        wl.set_endless();
    }
    let model = EnergyModel::new(design.net.config());

    let n_apps = wl.apps.len();
    let mut acc: Vec<EpochCounters> = vec![EpochCounters::default(); n_apps];
    let mut energy = EnergyBreakdown::default();
    let mut measured_cycles = 0u64;
    let mut epoch = 0u64;
    let mut cycle = 0u64;

    // Campaign points run unattended for millions of cycles; a generous
    // watchdog turns a silent wedge into an immediate, diagnosable panic
    // instead of an hour of spinning into `max_cycles`. Both bounds are
    // environment-configurable (ADAPTNOC_WATCHDOG_SECS /
    // ADAPTNOC_WATCHDOG_WINDOW; see `crate::watchdog`), and a trip is
    // recorded as a structured `harness.watchdog` telemetry event before
    // the panic so supervised runs see it in their metric stream.
    let mut watchdog = crate::watchdog::HarnessWatchdog::from_env();

    loop {
        wl.tick(&mut design.net);
        design.net.step();
        design.tick()?;
        if let Some(stall) = watchdog.observe(&mut design.net) {
            panic!("harness run wedged ({kind} design): {stall}");
        }
        cycle += 1;

        if cycle.is_multiple_of(rc.epoch_cycles) {
            epoch += 1;
            let snaps: Vec<EpochCounters> = wl.apps.iter().map(|a| a.epoch).collect();
            let (report, telemetry) = wl.epoch_telemetry(&mut design.net, layout, &model);
            let measure = epoch > rc.warmup_epochs || rc.run_to_completion;
            if measure {
                measured_cycles += report.static_cycles.cycles;
                energy.accumulate(&model.energy(&report));
                for (a, s) in acc.iter_mut().zip(&snaps) {
                    merge(a, s);
                }
            }
            design.on_epoch(&report, &telemetry)?;
            if !rc.run_to_completion && epoch >= rc.warmup_epochs + rc.epochs {
                break;
            }
        }
        if rc.run_to_completion && wl.finished() {
            // Final partial epoch.
            let snaps: Vec<EpochCounters> = wl.apps.iter().map(|a| a.epoch).collect();
            let (report, _telemetry) = wl.epoch_telemetry(&mut design.net, layout, &model);
            measured_cycles += report.static_cycles.cycles;
            energy.accumulate(&model.energy(&report));
            for (a, s) in acc.iter_mut().zip(&snaps) {
                merge(a, s);
            }
            break;
        }
        if cycle >= rc.max_cycles {
            break;
        }
    }

    let apps: Vec<AppMetrics> = wl
        .apps
        .iter()
        .zip(&acc)
        .map(|(app, e)| AppMetrics {
            name: app.profile.name.to_string(),
            network_latency: e.avg_network_latency(),
            queuing_latency: e.avg_queuing_latency(),
            hops: e.avg_hops(),
            delivered: e.delivered,
            requests: e.requests,
        })
        .collect();
    let total_delivered: u64 = acc.iter().map(|e| e.delivered).sum();
    let wsum = |f: &dyn Fn(&EpochCounters) -> f64| -> f64 {
        if total_delivered == 0 {
            return 0.0;
        }
        acc.iter().map(|e| f(e) * e.delivered as f64).sum::<f64>() / total_delivered as f64
    };

    let (selections, reconfigs) = match design.controller() {
        Some(ctl) => (
            Some(
                (0..ctl.regions.len())
                    .map(|i| ctl.selection_breakdown(i))
                    .collect(),
            ),
            ctl.regions.iter().map(|r| r.reconfig_count).sum(),
        ),
        None => (None, 0),
    };

    Ok(RunResult {
        design: kind,
        cycles: measured_cycles,
        network_latency: wsum(&|e| e.avg_network_latency()),
        queuing_latency: wsum(&|e| e.avg_queuing_latency()),
        hops: wsum(&|e| e.avg_hops()),
        energy,
        execution_time: if rc.run_to_completion {
            wl.execution_time()
        } else {
            None
        },
        apps,
        selections,
        reconfigs,
    })
}

fn merge(a: &mut EpochCounters, s: &EpochCounters) {
    a.requests += s.requests;
    a.mc_requests += s.mc_requests;
    a.coherence_sent += s.coherence_sent;
    a.replies += s.replies;
    a.insts += s.insts;
    a.l1i += s.l1i;
    a.net_lat_sum += s.net_lat_sum;
    a.queue_lat_sum += s.queue_lat_sum;
    a.hops_sum += s.hops_sum;
    a.delivered += s.delivered;
    a.data_delivered += s.data_delivered;
    a.coherence_delivered += s.coherence_delivered;
    a.inj_queue_sum += s.inj_queue_sum;
    a.inj_queue_samples += s.inj_queue_samples;
}

/// Fixed-topology policies for an adaptive design (one per region).
pub fn fixed_policies(kinds: &[TopologyKind]) -> Vec<TopologyPolicy> {
    kinds.iter().map(|&k| TopologyPolicy::Fixed(k)).collect()
}

/// Determines the oracle static topology per region (Adapt-NoC-noRL):
/// evaluates each candidate on an isolated single-region chip and keeps
/// the one with the lowest mean packet latency (the paper's "optimal
/// performance among all topology choices").
///
/// # Errors
///
/// Propagates [`ControlError`] from the evaluation runs.
pub fn oracle_policies(
    layout: &ChipLayout,
    profiles: &[AppProfile],
    rc: &RunConfig,
) -> Result<Vec<TopologyPolicy>, ControlError> {
    oracle_policies_par(layout, profiles, rc, 1)
}

/// [`oracle_policies`] with the `region x candidate-topology` evaluation
/// grid fanned across `threads` workers. Every evaluation is an isolated
/// single-region run, and the per-region argmin scans candidates in
/// `TopologyKind::ACTIONS` order (ties keep the earlier kind), so the
/// result is identical to the serial oracle at any thread count.
///
/// # Errors
///
/// Propagates [`ControlError`] from the evaluation runs.
pub fn oracle_policies_par(
    layout: &ChipLayout,
    profiles: &[AppProfile],
    rc: &RunConfig,
    threads: usize,
) -> Result<Vec<TopologyPolicy>, ControlError> {
    let kinds = TopologyKind::ACTIONS;
    let regions = layout.regions.len().min(profiles.len());
    let lats = crate::parallel::run_indexed(regions * kinds.len(), threads, |i| {
        let (region, profile) = (&layout.regions[i / kinds.len()], &profiles[i / kinds.len()]);
        let kind = kinds[i % kinds.len()];
        let single = ChipLayout::single(region.rect, profile.class == AppClass::Gpu);
        run_design(
            DesignKind::AdaptNocNoRl,
            &single,
            std::slice::from_ref(profile),
            fixed_policies(&[kind]),
            rc,
        )
        .map(|r| r.packet_latency())
    });
    let lats = lats.into_iter().collect::<Result<Vec<f64>, _>>()?;
    Ok(lats
        .chunks(kinds.len())
        .map(|per_region| {
            let mut best = (f64::INFINITY, TopologyKind::Mesh);
            for (kind, &lat) in kinds.iter().zip(per_region) {
                if lat < best.0 {
                    best = (lat, *kind);
                }
            }
            TopologyPolicy::Fixed(best.1)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            epoch_cycles: 5_000,
            epochs: 2,
            warmup_epochs: 1,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_run_produces_metrics() {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profiles = vec![by_name("CA").unwrap()];
        let r = run_design(DesignKind::Baseline, &layout, &profiles, vec![], &quick()).unwrap();
        assert_eq!(r.design, DesignKind::Baseline);
        assert!(r.network_latency > 0.0);
        assert!(r.hops > 0.0);
        assert!(r.energy.total_j() > 0.0);
        assert!(r.energy.static_j > 0.0);
        assert!(r.energy.dynamic_j > 0.0);
        assert_eq!(r.apps.len(), 1);
        assert_eq!(r.apps[0].name, "CA");
        assert!(r.apps[0].delivered > 0);
        assert!(r.selections.is_none());
    }

    #[test]
    fn adaptive_run_records_selection() {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profiles = vec![by_name("BS").unwrap()];
        let r = run_design(
            DesignKind::AdaptNocNoRl,
            &layout,
            &profiles,
            fixed_policies(&[TopologyKind::Cmesh]),
            &quick(),
        )
        .unwrap();
        let sel = r.selections.unwrap();
        assert_eq!(sel[0][TopologyKind::Cmesh.action_index()], 1.0);
        assert!(r.reconfigs >= 1);
    }

    #[test]
    fn run_to_completion_reports_execution_time() {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let mut profile = by_name("CA").unwrap();
        profile.insts_per_core = 2_000.0;
        let rc = RunConfig {
            run_to_completion: true,
            max_cycles: 1_000_000,
            ..quick()
        };
        let r = run_design(DesignKind::Baseline, &layout, &[profile], vec![], &rc).unwrap();
        assert!(r.execution_time.is_some());
        assert!(r.execution_time.unwrap() > 0);
    }

    #[test]
    fn mixed_workload_runs_all_designs() {
        let layout = ChipLayout::paper_mixed();
        let profiles = vec![
            by_name("BS").unwrap(),
            by_name("HS").unwrap(),
            by_name("NW").unwrap(),
        ];
        let rc = RunConfig {
            epoch_cycles: 4_000,
            epochs: 1,
            warmup_epochs: 1,
            ..Default::default()
        };
        for kind in DesignKind::ALL {
            let policies = if kind.is_adaptive() {
                fixed_policies(&[TopologyKind::Cmesh, TopologyKind::Tree, TopologyKind::Torus])
            } else {
                vec![]
            };
            let r = run_design(kind, &layout, &profiles, policies, &rc).unwrap();
            assert!(
                r.network_latency > 0.0,
                "{kind} produced no latency measurements"
            );
        }
    }

    #[test]
    fn oracle_picks_some_topology() {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profiles = vec![by_name("BS").unwrap()];
        let rc = RunConfig {
            epoch_cycles: 3_000,
            epochs: 1,
            warmup_epochs: 1,
            ..Default::default()
        };
        let p = oracle_policies(&layout, &profiles, &rc).unwrap();
        assert_eq!(p.len(), 1);
        assert!(matches!(p[0], TopologyPolicy::Fixed(_)));
    }
}

//! Regenerates every evaluation figure and table of the paper.
//!
//! Usage: `cargo run --release -p adaptnoc-bench --bin gen-figures
//! [--quick] [--only figNN,...] [--threads N] [--checkpoint DIR]
//! [--metrics-out DIR] [--submit ADDR]`
//!
//! `--threads N` fans independent simulation points across N workers
//! (0 = auto-detect; the default, 1, runs serially). Output is
//! byte-identical at any thread count.
//!
//! `--checkpoint DIR` journals completed fault-sweep points to
//! `DIR/faults.jsonl` (and scenario-campaign points to
//! `DIR/scenarios.jsonl`) as they finish; a killed run re-invoked with
//! the same flag resumes from the completed points and still produces
//! byte-identical JSON.
//!
//! `--only scenarios` runs just the open-system scenario campaign: the
//! checked-in `scenarios/latency_throughput.scn` sweep producing the
//! latency-throughput curve (saturation knee, p99 blow-up).
//!
//! `--only scaling` runs just the large-mesh scaling campaign: 16x16
//! through 64x64 flat meshes plus the 64x64 chiplet fabric, each idle
//! and loaded, with `--threads N` stepping every network
//! region-parallel. Rows (and therefore the JSON) are byte-identical at
//! any thread count.
//!
//! `--metrics-out DIR` additionally runs the telemetry probe (two short
//! instrumented scenarios; see `adaptnoc_bench::telemetry`) and writes
//! `DIR/telemetry.jsonl` + `DIR/telemetry.prom`. With `--checkpoint` the
//! same pair also lands next to the checkpoint journal, so a resumed
//! campaign keeps its metric snapshots beside its progress.
//!
//! `--submit ADDR` routes the scenario campaign through a running
//! `adaptnoc-farmd` (see `docs/FARM.md`) at `ADDR` (`tcp://HOST:PORT`,
//! bare `HOST:PORT`, or `unix:PATH`) instead of running it in-process.
//! The daemon executes the identical deterministic sweep, so the rows —
//! and therefore `results/figures.json` — are byte-identical to a direct
//! run; the farm CI job relies on exactly that equivalence.
//!
//! Prints the same rows/series the paper reports (normalized to the
//! baseline design) and writes machine-readable JSON next to the text.

use adaptnoc_bench::jsonrows::{rows_json, ToJson};
use adaptnoc_bench::prelude::*;
use adaptnoc_sim::json::{self, Value};
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only: Option<HashSet<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|list| list.split(',').map(|s| s.trim().to_string()).collect());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| configured_threads(v.parse().expect("--threads takes a number")))
        .unwrap_or(1);
    let checkpoint_dir = args
        .iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let submit_addr = args
        .iter()
        .position(|a| a == "--submit")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut scale = if quick {
        FigScale::quick()
    } else {
        FigScale::full()
    };
    scale.threads = threads;
    let want = |name: &str| only.as_ref().is_none_or(|o| o.contains(name));
    let t0 = Instant::now();
    // Merge into any existing results so partial (--only) runs refresh
    // sections without discarding the rest.
    let mut json = std::fs::read_to_string("results/figures.json")
        .ok()
        .and_then(|s| json::parse(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| Value::Object(vec![]));

    println!(
        "== Adapt-NoC figure regeneration ({}) ==",
        if quick { "quick" } else { "full" }
    );

    if want("mixed")
        || want("fig07")
        || want("fig10")
        || want("fig11")
        || want("fig12")
        || want("fig13")
    {
        banner("Figs. 7/10/11/12/13: mixed workload, normalized to baseline");
        let rows = mixed_campaign(&scale).expect("mixed campaign");
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "design", "pkt-lat", "exec", "energy", "dynamic", "static", "edp"
        );
        for r in &rows {
            println!(
                "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                r.design,
                r.packet_latency_norm,
                r.exec_time_norm,
                r.energy_norm,
                r.dynamic_norm,
                r.static_norm,
                r.edp_norm
            );
        }
        json.insert("mixed", rows_json(&rows));
    }

    if want("fig08") {
        banner("Fig. 8: CPU application hop counts (normalized)");
        let rows = fig08(&scale).expect("fig08");
        print_per_app(&rows, false);
        json.insert("fig08", rows_json(&rows));
    }

    if want("fig09") {
        banner("Fig. 9: GPU application hop counts + queuing latency (normalized)");
        let rows = fig09(&scale).expect("fig09");
        print_per_app(&rows, true);
        json.insert("fig09", rows_json(&rows));
    }

    if want("fig14") {
        banner("Fig. 14: topology selection breakdown, CPU apps (4x4)");
        let rows = fig14(&scale).expect("fig14");
        print_selection(&rows);
        json.insert("fig14", rows_json(&rows));
    }

    if want("fig15") {
        banner("Fig. 15: topology selection breakdown, GPU apps (4x8)");
        let rows = fig15(&scale).expect("fig15");
        print_selection(&rows);
        json.insert("fig15", rows_json(&rows));
    }

    if want("fig16") {
        banner("Fig. 16: RL vs static across subNoC sizes (ratios, lower = RL wins)");
        let rows = fig16(&scale).expect("fig16");
        println!(
            "{:<8} {:>14} {:>14}",
            "size", "latency-ratio", "energy-ratio"
        );
        for r in &rows {
            println!(
                "{:<8} {:>14.3} {:>14.3}",
                r.size, r.latency_ratio, r.energy_ratio
            );
        }
        json.insert("fig16", rows_json(&rows));
    }

    if want("fig17") {
        banner("Fig. 17: epoch-size sweep (normalized to 50K)");
        let rows = fig17(&scale).expect("fig17");
        println!("{:<10} {:>12} {:>12}", "epoch", "latency", "power");
        for r in &rows {
            println!(
                "{:<10} {:>12.3} {:>12.3}",
                r.epoch_cycles, r.latency_norm, r.power_norm
            );
        }
        json.insert("fig17", rows_json(&rows));
    }

    if want("fig18") {
        banner("Fig. 18: discount-factor sweep (normalized to 0.9)");
        let rows = fig18(&scale).expect("fig18");
        print_sweep(&rows);
        json.insert("fig18", rows_json(&rows));
    }

    if want("fig19") {
        banner("Fig. 19: exploration-rate sweep (normalized to 0.05)");
        let rows = fig19(&scale).expect("fig19");
        print_sweep(&rows);
        json.insert("fig19", rows_json(&rows));
    }

    if want("ablations") {
        banner("Ablation: each candidate topology held fixed (4x4, BS)");
        let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
        let rows = ablation_sweep(seeds, &scale.rc, scale.threads).expect("ablation sweep");
        println!(
            "{:<10} {:>5} {:>10} {:>8} {:>12} {:>10}",
            "topology", "seed", "pkt-lat", "hops", "energy-j", "delivered"
        );
        for r in &rows {
            println!(
                "{:<10} {:>5} {:>10.2} {:>8.3} {:>12.3e} {:>10}",
                r.topology, r.seed, r.packet_latency, r.hops, r.energy_j, r.delivered
            );
        }
        json.insert("ablations", rows_json(&rows));
    }

    if want("faults") {
        banner("Fault sweep: resilience under seeded fault schedules (4x4 mesh)");
        let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
        let rows = match &checkpoint_dir {
            Some(dir) => fault_sweep_checkpointed(seeds, scale.threads, &dir.join("faults.jsonl"))
                .expect("fault sweep checkpoint journal"),
            None => fault_sweep_par(seeds, scale.threads).expect("fault sweep"),
        };
        println!(
            "{:<16} {:>5} {:>9} {:>7} {:>7} {:>6} {:>10} {:>8} {:>8}",
            "scenario", "seed", "delivery", "nacks", "drops", "recov", "ttr", "lat", "dead"
        );
        for r in &rows {
            println!(
                "{:<16} {:>5} {:>9.4} {:>7} {:>7} {:>6} {:>10.1} {:>8.2} {:>8}",
                r.scenario,
                r.seed,
                r.delivery_ratio,
                r.nacks,
                r.drops,
                r.recoveries,
                r.mean_time_to_recover,
                r.avg_packet_latency,
                r.disconnected
            );
        }
        json.insert("faults", rows_json(&rows));
    }

    if want("scenarios") {
        banner("Scenario campaign: open-loop latency-throughput (8x8 mesh, uniform Poisson)");
        let rows = match (&submit_addr, &checkpoint_dir) {
            (Some(addr), _) => {
                println!("submitting to farm daemon at {addr}");
                adaptnoc_bench::submit::submit_and_wait(
                    addr,
                    "latency_throughput",
                    LATENCY_THROUGHPUT_SCN,
                )
                .expect("farm-submitted scenario campaign")
            }
            (None, Some(dir)) => scenario_sweep_checkpointed(
                "latency_throughput",
                LATENCY_THROUGHPUT_SCN,
                scale.threads,
                &dir.join("scenarios.jsonl"),
            )
            .expect("scenario campaign checkpoint journal"),
            (None, None) => {
                scenario_sweep_par("latency_throughput", LATENCY_THROUGHPUT_SCN, scale.threads)
                    .expect("scenario campaign")
            }
        };
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>5}",
            "load", "offered", "accepted", "avg-lat", "p50", "p99", "p999", "max-q", "sat"
        );
        for r in &rows {
            println!(
                "{:<6.2} {:>9.4} {:>9.4} {:>9.1} {:>8.1} {:>8.1} {:>9.1} {:>9} {:>5}",
                r.load,
                r.offered_rate,
                r.accepted_rate,
                r.avg_latency,
                r.p50,
                r.p99,
                r.p999,
                r.max_source_queue,
                if r.saturated { "yes" } else { "" }
            );
        }
        json.insert("scenarios", rows_json(&rows));
    }

    if want("scaling") {
        banner("Scaling campaign: 16x16 -> 64x64 meshes + 64x64 chiplet fabric");
        let cycles = if quick { 600 } else { 4_000 };
        let rows = scaling_campaign(cycles, threads).expect("scaling campaign");
        println!(
            "{:<16} {:>7} {:>9} {:>7} {:>9} {:>9} {:>9} {:>7}",
            "design", "tiles", "channels", "load", "offered", "delivered", "avg-lat", "hops"
        );
        for r in &rows {
            println!(
                "{:<16} {:>7} {:>9} {:>7.3} {:>9} {:>9} {:>9.1} {:>7.2}",
                r.design,
                r.routers,
                r.channels,
                r.load,
                r.offered,
                r.delivered,
                r.avg_latency,
                r.avg_hops
            );
        }
        json.insert("scaling", rows_json(&rows));
    }

    if want("tables") {
        banner("Sec. V-B1: area");
        let a = area_table();
        println!(
            "baseline {:.2} mm2 | adapt {:.2} mm2 | extras {:.2} mm2 | saving {:.1}% (paper: 17.27 / -14%)",
            a.baseline_mm2,
            a.adapt_mm2,
            a.extras_mm2,
            a.saving_fraction * 100.0
        );
        json.insert("area", a.to_json());

        banner("Sec. V-B2: wiring budget");
        let (budget, rows) = wiring_table().expect("wiring");
        println!(
            "budget per tile edge: {} high-metal + {} intermediate bidirectional 256-bit links",
            budget.high_metal_links, budget.intermediate_links
        );
        println!(
            "{:<12} {:>10} {:>10} {:>8}",
            "topology", "channels", "express", "fits"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10} {:>10} {:>8}",
                r.topology, r.max_channels_per_edge, r.max_express_per_edge, r.fits_budget
            );
        }
        json.insert("wiring", rows_json(&rows));

        banner("Sec. V-B3: timing");
        let t = timing_table();
        println!(
            "conventional RC/VA/SA/ST: {:?} ps | adaptable (mux merged): {:?} ps",
            t.conventional_ps, t.adaptable_ps
        );
        println!(
            "max freq {:.2} GHz | 4mm high-metal wire {:.0} ps | reversed +{:.0} ps | DQN {:.0} ns (paper: 486)",
            t.max_freq_ghz, t.wire_4mm_ps, t.reversed_extra_ps, t.dqn_ns
        );
        json.insert("timing", t.to_json());

        banner("Sec. V-A1: wiring scalability (FTBY vs Adapt at 16x16)");
        let rows = scalability_table().expect("scalability");
        println!(
            "{:<8} {:<14} {:>10} {:>6}",
            "size", "design", "channels", "fits"
        );
        for r in &rows {
            println!(
                "{:<8} {:<14} {:>10} {:>6}",
                r.size, r.design, r.max_channels_per_edge, r.fits_budget
            );
        }
        json.insert("scalability", rows_json(&rows));

        banner("Sec. II-C1: reconfiguration latency (idle 4x4 subNoC)");
        let rows = reconfig_table().expect("reconfig");
        println!("{:<10} {:<10} {:>8} {:>6}", "from", "to", "cycles", "fast");
        for r in &rows {
            println!(
                "{:<10} {:<10} {:>8} {:>6}",
                r.from, r.to, r.cycles, r.fast_path
            );
        }
        json.insert("reconfig", rows_json(&rows));
    }

    if let Some(dir) = &metrics_out {
        banner("Telemetry probe: instrumented RL + fault runs");
        let reg = adaptnoc_bench::telemetry::telemetry_probe();
        let (jsonl, prom) =
            adaptnoc_bench::telemetry::write_metrics(dir, &reg).expect("write --metrics-out");
        println!("wrote {} and {}", jsonl.display(), prom.display());
        if let Some(ckpt) = &checkpoint_dir {
            if ckpt != dir {
                let (jsonl, prom) = adaptnoc_bench::telemetry::write_metrics(ckpt, &reg)
                    .expect("write metrics next to checkpoint journal");
                println!("wrote {} and {}", jsonl.display(), prom.display());
            }
        }
    }

    let out = json;
    std::fs::create_dir_all("results").ok();
    // Atomic tmp-file + rename writes: a Ctrl-C here leaves the previous
    // complete results in place, never a torn JSON file.
    adaptnoc_bench::telemetry::atomic_write(
        std::path::Path::new("results/figures.json"),
        &out.to_string_pretty(),
    )
    .ok();
    adaptnoc_bench::telemetry::atomic_write(
        std::path::Path::new("results/REPORT.md"),
        &adaptnoc_bench::report::render_report(&out),
    )
    .ok();
    println!(
        "\nDone in {:.1}s; results/figures.json and results/REPORT.md written",
        t0.elapsed().as_secs_f64()
    );
}

fn banner(s: &str) {
    println!("\n--- {s} ---");
}

fn print_per_app(rows: &[adaptnoc_bench::figs::PerAppRow], with_queuing: bool) {
    if with_queuing {
        println!(
            "{:<6} {:<16} {:>10} {:>12}",
            "app", "design", "hops", "queuing"
        );
    } else {
        println!("{:<6} {:<16} {:>10}", "app", "design", "hops");
    }
    for r in rows {
        if with_queuing {
            println!(
                "{:<6} {:<16} {:>10.3} {:>12.3}",
                r.app, r.design, r.hops_norm, r.queuing_norm
            );
        } else {
            println!("{:<6} {:<16} {:>10.3}", r.app, r.design, r.hops_norm);
        }
    }
}

fn print_selection(rows: &[adaptnoc_bench::figs::SelectionRow]) {
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "app", "mesh", "cmesh", "torus", "tree"
    );
    for r in rows {
        println!(
            "{:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            r.app, r.fractions[0], r.fractions[1], r.fractions[2], r.fractions[3]
        );
    }
}

fn print_sweep(rows: &[adaptnoc_bench::figs::SweepRow]) {
    println!("{:<8} {:>12} {:>12}", "value", "latency", "power");
    for r in rows {
        println!(
            "{:<8} {:>12.3} {:>12.3}",
            r.value, r.latency_norm, r.power_norm
        );
    }
}

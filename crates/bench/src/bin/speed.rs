//! Simulator throughput benchmark.
//!
//! Usage: `cargo run --release -p adaptnoc-bench --bin speed --
//! [--cycles N] [--threads N] [--json PATH] [--full-sweep]
//! [--rc-table-walk] [--metrics DIR] [--assert-off-within PCT]
//! [--assert-full-min KCPS] [--scenario FILE]
//!
//! Measures three workloads on the paper's mixed chip: an idle network
//! (active-set fast path), the full three-app workload (steady-state
//! load), and a parallel fault-sweep campaign scaled by `--threads`
//! (0 = auto-detect host parallelism). `--threads N` with N > 1 also
//! steps the *single* full-load simulation region-parallel on a
//! [`StepPool`] — output stays byte-identical to serial, so the packet
//! count doubles as an equivalence check. `--full-sweep` disables
//! active-set scheduling so the two modes can be compared directly; it is
//! a serial validation baseline and refuses to combine with
//! `--threads > 1`. `--rc-table-walk` disables lookahead route
//! computation so every head flit re-walks the routing tables at each
//! router (the classic RC path, kept as a debug reference); its packet
//! count must be byte-identical to the lookahead default, which CI
//! asserts. With `--json`, writes a `BENCH_<date>.json`-style
//! record (cycles/sec, wall-clock, host cores, and per-stage span timings
//! from a short sampled profiling pass) for tracking performance across
//! commits.
//!
//! `--metrics DIR` attaches `Sampled(256)` telemetry to the full-workload
//! run, writes its snapshot to `DIR/telemetry.jsonl` + `DIR/telemetry.prom`,
//! and prints the idle-stepping telemetry-overhead microbench
//! (off / sampled / strict cycles per second). `--assert-off-within PCT`
//! runs that microbench and exits non-zero unless its telemetry-off row
//! is within PCT percent of the uninstrumented idle measurement from the
//! same process — the CI gate for the zero-cost-when-disabled claim.
//!
//! `--scenario FILE` additionally replays a `.scn` scenario file
//! (`docs/SCENARIOS.md`) end to end and reports its simulation rate and
//! offered/accepted summary; sweep scenarios replay their middle load
//! point.

use adaptnoc_bench::parallel::configured_threads;
use adaptnoc_bench::prelude::*;
use adaptnoc_core::prelude::*;
use adaptnoc_sim::json::Value;
use adaptnoc_sim::prelude::*;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use std::time::Instant;

struct Args {
    cycles: u64,
    threads: usize,
    json: Option<String>,
    full_sweep: bool,
    rc_table_walk: bool,
    metrics: Option<std::path::PathBuf>,
    assert_off_within: Option<f64>,
    assert_full_min: Option<f64>,
    scenario: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    Args {
        cycles: get("--cycles").map_or(200_000, |v| v.parse().expect("--cycles takes a number")),
        threads: configured_threads(
            get("--threads").map_or(1, |v| v.parse().expect("--threads takes a number")),
        ),
        json: get("--json"),
        full_sweep: argv.iter().any(|a| a == "--full-sweep"),
        rc_table_walk: argv.iter().any(|a| a == "--rc-table-walk"),
        metrics: get("--metrics").map(std::path::PathBuf::from),
        assert_off_within: get("--assert-off-within")
            .map(|v| v.parse().expect("--assert-off-within takes a percentage")),
        assert_full_min: get("--assert-full-min")
            .map(|v| v.parse().expect("--assert-full-min takes Kc/s")),
        scenario: get("--scenario"),
    }
}

fn main() {
    let args = parse_args();
    if args.full_sweep && args.threads > 1 {
        eprintln!(
            "error: --full-sweep is a serial validation baseline and cannot be \
             combined with --threads {} (region-parallel stepping); drop one of the flags",
            args.threads
        );
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let layout = ChipLayout::paper_mixed();
    let cfg = SimConfig::baseline();
    let kcycles = args.cycles as f64 / 1_000.0;
    let mut record: Vec<(String, Value)> = vec![
        ("host_cores".into(), Value::Number(host_cores as f64)),
        ("threads".into(), Value::Number(args.threads as f64)),
        ("cycles".into(), Value::Number(args.cycles as f64)),
        ("full_sweep".into(), Value::Bool(args.full_sweep)),
        ("rc_table_walk".into(), Value::Bool(args.rc_table_walk)),
    ];

    // 1) Network alone, no traffic — pure scheduler overhead.
    let spec = mesh_chip(layout.grid, &cfg).unwrap();
    let mut net = Network::new(spec.clone(), cfg.clone()).unwrap();
    net.set_full_sweep(args.full_sweep);
    net.set_lookahead_rc(!args.rc_table_walk);
    let t0 = Instant::now();
    for _ in 0..args.cycles {
        net.step();
    }
    let idle_s = t0.elapsed().as_secs_f64();
    println!("idle net: {:.1} Kc/s", kcycles / idle_s);
    record.push(("idle_kcps".into(), Value::Number(kcycles / idle_s)));
    record.push(("idle_wall_s".into(), Value::Number(idle_s)));

    // 2) Net + the three-app mixed workload under steady load.
    let mut net = Network::new(spec, cfg.clone()).unwrap();
    net.set_full_sweep(args.full_sweep);
    net.set_lookahead_rc(!args.rc_table_walk);
    if args.metrics.is_some() {
        net.set_telemetry_mode(TelemetryMode::Sampled(256));
    }
    let profiles = vec![
        by_name("CA").unwrap(),
        by_name("KM").unwrap(),
        by_name("BP").unwrap(),
    ];
    let mut wl = Workload::new(&layout, &profiles, 1);
    let mut pool = (args.threads > 1).then(|| StepPool::new(args.threads));
    let t0 = Instant::now();
    for _ in 0..args.cycles {
        wl.tick(&mut net);
        match pool.as_mut() {
            Some(pool) => net.step_parallel(pool),
            None => net.step(),
        }
    }
    let full_s = t0.elapsed().as_secs_f64();
    let pkts = net.totals().stats.packets;
    println!(
        "full: {:.1} Kc/s, pkts {} ({} thread(s))",
        kcycles / full_s,
        pkts,
        args.threads
    );
    record.push(("full_kcps".into(), Value::Number(kcycles / full_s)));
    record.push(("full_wall_s".into(), Value::Number(full_s)));
    record.push(("full_packets".into(), Value::Number(pkts as f64)));

    // Loaded-throughput regression gate (CI perf-smoke): unlike the idle
    // gate this exercises the router hot loop under steady traffic, so a
    // regression in RC/VA/SA/ST shows up here first. The floor must be set
    // conservatively — CI hosts are shared and noisy.
    if let Some(min_kcps) = args.assert_full_min {
        let full = kcycles / full_s;
        assert!(
            full >= min_kcps,
            "loaded throughput regressed: {full:.1} Kc/s is below the {min_kcps:.1} Kc/s floor"
        );
        println!("loaded throughput above the {min_kcps:.1} Kc/s floor ({full:.1} Kc/s)");
    }

    // Per-stage span timings for the JSON record: a short sampled
    // profiling pass over the same loaded workload (separate from the
    // timed run above so sampling cost never pollutes `full_kcps`). The
    // resulting `stage_ns_per_sampled_cycle` object makes each BENCH entry
    // self-describing about *where* the cycle time goes.
    if args.json.is_some() {
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let mut pnet = Network::new(spec, cfg.clone()).unwrap();
        pnet.set_full_sweep(args.full_sweep);
        pnet.set_lookahead_rc(!args.rc_table_walk);
        pnet.set_telemetry_mode(TelemetryMode::Sampled(64));
        let mut wl = Workload::new(&layout, &profiles, 1);
        let mut pool = (args.threads > 1).then(|| StepPool::new(args.threads));
        for _ in 0..args.cycles.min(20_000) {
            wl.tick(&mut pnet);
            match pool.as_mut() {
                Some(pool) => pnet.step_parallel(pool),
                None => pnet.step(),
            }
        }
        let _ = pnet.take_epoch(); // flush the tail into the registry
        let snap = pnet
            .telemetry()
            .expect("telemetry attached for the profiling pass")
            .snapshot();
        let mut stages: Vec<(String, Value)> = Vec::new();
        for span in &snap.spans {
            if span.count == 0 {
                continue;
            }
            let per_cycle = span.total_ns as f64 / span.count as f64;
            stages.push((span.name.clone(), Value::Number(per_cycle)));
        }
        record.push(("stage_ns_per_sampled_cycle".into(), Value::Object(stages)));
    }

    if let Some(dir) = &args.metrics {
        let _ = net.take_epoch(); // flush the tail into the registry
        let reg = net.telemetry().expect("telemetry attached").clone();
        let (jsonl, prom) =
            adaptnoc_bench::telemetry::write_metrics(dir, &reg).expect("write --metrics");
        println!("metrics: wrote {} and {}", jsonl.display(), prom.display());
    }

    // Telemetry overhead on the idle fast path. Under `Off` no telemetry
    // code is even reachable, so the `off` row must track the
    // uninstrumented idle measurement taken above in this same process —
    // that is what `--assert-off-within` gates in CI.
    if args.metrics.is_some() || args.assert_off_within.is_some() {
        let rows = adaptnoc_bench::microbench::telemetry_overhead(args.cycles.min(50_000));
        for (mode, kcps) in &rows {
            println!("telemetry overhead, idle net [{mode}]: {kcps:.1} Kc/s");
        }
        if let Some(pct) = args.assert_off_within {
            let off = rows.iter().find(|(m, _)| m == "off").expect("off row").1;
            let idle = kcycles / idle_s;
            let floor = idle * (1.0 - pct / 100.0);
            assert!(
                off >= floor,
                "telemetry-off idle throughput regressed: {off:.1} Kc/s is more than \
                 {pct}% below the uninstrumented {idle:.1} Kc/s"
            );
            println!(
                "telemetry-off within {pct}% of uninstrumented idle ({off:.1} vs {idle:.1} Kc/s)"
            );
        }
    }

    // 3) Campaign fan-out: the fault sweep across `--threads` workers
    // (one seed per potential worker so there is work to steal).
    let seeds: Vec<u64> = (1..=args.threads.max(2) as u64).collect();
    let t0 = Instant::now();
    let rows = fault_sweep_par(&seeds, args.threads).expect("fault sweep");
    let campaign_s = t0.elapsed().as_secs_f64();
    println!(
        "campaign: {} points in {:.2}s on {} thread(s)",
        rows.len(),
        campaign_s,
        args.threads
    );
    record.push(("campaign_points".into(), Value::Number(rows.len() as f64)));
    record.push(("campaign_wall_s".into(), Value::Number(campaign_s)));

    // 4) Optional scripted scenario replay (--scenario FILE): the full
    // open-loop run — traffic phases, faults, reconfigurations — timed
    // end to end.
    if let Some(path) = &args.scenario {
        let src = std::fs::read_to_string(path).expect("read --scenario file");
        let plan = adaptnoc_bench::scenarios::load_scenario(&src).expect("load --scenario file");
        let load = plan.uses_sweep_load().then(|| {
            let pts = plan.sweep.expect("sweep directive").points();
            pts[pts.len() / 2]
        });
        let opts = adaptnoc_scenario::prelude::RunOptions {
            load,
            threads: args.threads,
            ..Default::default()
        };
        let t0 = Instant::now();
        let out = adaptnoc_scenario::prelude::run(&plan, &opts).expect("scenario replay");
        let scn_s = t0.elapsed().as_secs_f64();
        let total = plan.total_cycles() as f64;
        println!(
            "scenario {path}: {:.1} Kc/s, offered {:.4} accepted {:.4} p99 {:.1}",
            total / 1_000.0 / scn_s,
            out.offered_rate,
            out.accepted_rate,
            out.p99
        );
        record.push(("scenario".into(), Value::String(path.clone())));
        record.push((
            "scenario_kcps".into(),
            Value::Number(total / 1_000.0 / scn_s),
        ));
        record.push(("scenario_wall_s".into(), Value::Number(scn_s)));
        record.push((
            "scenario_accepted_rate".into(),
            Value::Number(out.accepted_rate),
        ));
    }

    if let Some(path) = args.json {
        let body = Value::Object(record).to_string_pretty();
        std::fs::write(&path, body).expect("write --json output");
        println!("wrote {path}");
    }
}

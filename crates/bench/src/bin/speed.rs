use adaptnoc_core::prelude::*;
use adaptnoc_sim::prelude::*;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use std::time::Instant;

fn main() {
    let layout = ChipLayout::paper_mixed();
    let cfg = SimConfig::baseline();

    // 1) Network alone, no traffic.
    let spec = mesh_chip(layout.grid, &cfg).unwrap();
    let mut net = Network::new(spec.clone(), cfg.clone()).unwrap();
    let t0 = Instant::now();
    for _ in 0..200_000 {
        net.step();
    }
    println!("idle net: {:.1} Kc/s", 200.0 / t0.elapsed().as_secs_f64());

    // 2) Net + workload ticks but skipping network processing of load:
    let mut net = Network::new(spec.clone(), cfg.clone()).unwrap();
    let profiles = vec![
        by_name("CA").unwrap(),
        by_name("KM").unwrap(),
        by_name("BP").unwrap(),
    ];
    let mut wl = Workload::new(&layout, &profiles, 1);
    let t0 = Instant::now();
    for _ in 0..200_000 {
        wl.tick(&mut net);
        net.step();
    }
    println!(
        "full: {:.1} Kc/s, pkts {}",
        200.0 / t0.elapsed().as_secs_f64(),
        net.totals().stats.packets
    );
}

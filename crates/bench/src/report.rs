//! Markdown report generation from `gen-figures` JSON output.
//!
//! Turns `results/figures.json` into `results/REPORT.md`: one section per
//! figure/table with the paper's claim alongside the measured rows, ready
//! to paste into EXPERIMENTS.md.

use adaptnoc_sim::json::Value;
use std::fmt::Write as _;

/// The paper's claims, shown next to each measured section.
fn paper_claim(key: &str) -> &'static str {
    match key {
        "mixed" => {
            "Adapt-NoC: −34% packet latency, −10% execution time, −53% energy \
             vs baseline; FTBY_PG static < Adapt static (by ~7%)."
        }
        "fig08" => "Adapt-NoC: −41% CPU hops vs baseline/OSCAR; +9% vs FTBY.",
        "fig09" => "Adapt-NoC: −46% GPU hops, −39% queuing vs baseline.",
        "fig14" => "CPU apps select cmesh ~85% of epochs.",
        "fig15" => "GPU apps: cmesh 37-64%; mesh/torus/tree >49% combined.",
        "fig16" => "RL beats static by 5-24% latency / 28-35% energy as size grows.",
        "fig17" => "Epoch 50K optimal; 10K costs ~17% latency / ~15% power.",
        "fig18" => "Discount factor 0.9 best.",
        "fig19" => "Exploration 0.05 best; 0.5 clearly worse.",
        "area" => "Baseline 17.27 mm²; Adapt-NoC 14% smaller.",
        "wiring" => "2 high-metal + 7 intermediate links/edge; Adapt needs ≤4.",
        "timing" => "Merged RC 266 ps / ST 350 ps under VA 370 ps; DQN 486 ns.",
        "scalability" => "FTBY wiring grows quadratically; fails at 16x16.",
        "reconfig" => "Notify (M+N−2)(T_r+T_l) + T_s=14 cycles, no halt.",
        _ => "",
    }
}

/// Renders one JSON value (array of row objects, or an object) as a
/// markdown table.
fn render_value(out: &mut String, v: &Value) {
    match v {
        Value::Array(rows) if !rows.is_empty() => {
            let Some(first) = rows[0].as_object() else {
                let _ = writeln!(out, "```json\n{rows:?}\n```");
                return;
            };
            let cols: Vec<&String> = first.iter().map(|(k, _)| k).collect();
            let _ = writeln!(
                out,
                "| {} |",
                cols.iter()
                    .map(|c| c.as_str())
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
            let _ = writeln!(
                out,
                "|{}|",
                cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
            );
            for row in rows {
                if row.as_object().is_none() {
                    continue;
                }
                let cells: Vec<String> = cols
                    .iter()
                    .map(|c| match row.get(c.as_str()) {
                        Some(Value::Number(f)) => {
                            if f.fract() == 0.0 && f.abs() < 1e9 {
                                format!("{f:.0}")
                            } else {
                                format!("{f:.3}")
                            }
                        }
                        Some(Value::String(s)) => s.clone(),
                        Some(Value::Bool(b)) => b.to_string(),
                        Some(Value::Array(a)) => a
                            .iter()
                            .map(|x| match x {
                                Value::Number(n) => format!("{n:.2}"),
                                other => other.to_string_compact(),
                            })
                            .collect::<Vec<_>>()
                            .join(" / "),
                        Some(other) => other.to_string_compact(),
                        None => String::new(),
                    })
                    .collect();
                let _ = writeln!(out, "| {} |", cells.join(" | "));
            }
        }
        Value::Object(o) => {
            let _ = writeln!(out, "| field | value |");
            let _ = writeln!(out, "|---|---|");
            for (k, v) in o {
                let _ = writeln!(out, "| {k} | {} |", v.to_string_compact());
            }
        }
        other => {
            let _ = writeln!(out, "```json\n{}\n```", other.to_string_compact());
        }
    }
}

/// Builds the full markdown report from a `figures.json` document.
pub fn render_report(figures: &Value) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Adapt-NoC reproduction report\n");
    let _ = writeln!(
        out,
        "Generated from `results/figures.json`. Paper claims are quoted for\n\
         side-by-side reading; see EXPERIMENTS.md for the verdicts.\n"
    );
    let order = [
        ("mixed", "Figs. 7/10/11/12/13 — mixed workload (normalized)"),
        ("fig08", "Fig. 8 — CPU hop counts"),
        ("fig09", "Fig. 9 — GPU hops + queuing"),
        ("fig14", "Fig. 14 — CPU topology selection"),
        ("fig15", "Fig. 15 — GPU topology selection"),
        ("fig16", "Fig. 16 — RL vs static by subNoC size"),
        ("fig17", "Fig. 17 — epoch-size sweep"),
        ("fig18", "Fig. 18 — discount-factor sweep"),
        ("fig19", "Fig. 19 — exploration-rate sweep"),
        ("area", "Sec. V-B1 — area"),
        ("wiring", "Sec. V-B2 — wiring"),
        ("timing", "Sec. V-B3 — timing"),
        ("scalability", "Sec. V-A1 — 16x16 scalability"),
        ("reconfig", "Sec. II-C1 — reconfiguration latency"),
    ];
    for (key, title) in order {
        if let Some(v) = figures.get(key) {
            let _ = writeln!(out, "## {title}\n");
            let claim = paper_claim(key);
            if !claim.is_empty() {
                let _ = writeln!(out, "*Paper:* {claim}\n");
            }
            render_value(&mut out, v);
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::json::parse;

    #[test]
    fn renders_array_sections_as_tables() {
        let figs = parse(
            r#"{"mixed": [
                {"design": "baseline", "packet_latency_norm": 1.0},
                {"design": "adapt-noc", "packet_latency_norm": 0.8}
            ]}"#,
        )
        .unwrap();
        let md = render_report(&figs);
        assert!(md.contains("## Figs. 7/10/11/12/13"));
        assert!(md.contains("| design | packet_latency_norm |"));
        assert!(md.contains("| adapt-noc | 0.800 |"));
        assert!(md.contains("*Paper:*"));
    }

    #[test]
    fn renders_selection_arrays_inline() {
        let figs =
            parse(r#"{"fig14": [{"app": "CA", "fractions": [0.0, 0.86, 0.14, 0.0]}]}"#).unwrap();
        let md = render_report(&figs);
        assert!(md.contains("0.00 / 0.86 / 0.14 / 0.00"));
    }

    #[test]
    fn skips_missing_sections() {
        let md = render_report(&parse("{}").unwrap());
        assert!(!md.contains("## Fig. 8"));
        assert!(md.contains("# Adapt-NoC reproduction report"));
    }

    #[test]
    fn object_sections_render_field_tables() {
        let figs = parse(r#"{"area": {"baseline_mm2": 17.28, "adapt_mm2": 13.68}}"#).unwrap();
        let md = render_report(&figs);
        assert!(md.contains("| baseline_mm2 | 17.28 |"));
    }
}

//! A minimal client for the NoC farm daemon's wire protocol, used by
//! `gen-figures --submit ADDR` to route the scenario campaign through a
//! running `adaptnoc-farmd` instead of executing it in-process.
//!
//! The protocol (authoritative spec: `docs/FARM.md`) is deliberately
//! simple enough to implement twice: every message is one *frame* — a
//! 4-byte big-endian length followed by that many bytes of UTF-8 JSON —
//! and every request is an object with an `"op"` key. This module is an
//! independent client implementation; the server lives in the
//! `adaptnoc-farm` crate, and the farm CI job diffs a daemon-routed
//! campaign against a direct one, which pins the two implementations to
//! each other.
//!
//! Addresses take three forms: `tcp://HOST:PORT`, a bare `HOST:PORT`
//! (TCP), or `unix:PATH` (a Unix-domain socket). A running daemon
//! advertises its own address in `<data-dir>/endpoint`.

use adaptnoc_sim::json::{self, Value};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Upper bound on one frame's payload; a frame header above this is
/// treated as a protocol error rather than an allocation request.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    let body = v.to_string_compact();
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` on a clean
/// EOF at a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Returns an error for torn frames, oversized headers, or JSON that
/// does not parse — a malformed peer must surface as a diagnosable
/// error, never a panic.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Value>> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {len} bytes (max {MAX_FRAME})"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))?;
    json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))
}

enum Stream {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected farm client issuing one request/response at a time.
pub struct FarmClient {
    stream: Stream,
}

impl std::fmt::Debug for FarmClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FarmClient")
    }
}

impl FarmClient {
    /// Connects to `tcp://HOST:PORT`, bare `HOST:PORT`, or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// Propagates connection errors; rejects unparseable addresses.
    pub fn connect(addr: &str) -> io::Result<FarmClient> {
        let stream = if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                Stream::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are unavailable on this platform",
                ));
            }
        } else {
            let hostport = addr.strip_prefix("tcp://").unwrap_or(addr);
            Stream::Tcp(std::net::TcpStream::connect(hostport)?)
        };
        Ok(FarmClient { stream })
    }

    /// Sends one frame without waiting for a reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn send(&mut self, v: &Value) -> io::Result<()> {
        write_frame(&mut self.stream, v)
    }

    /// Reads one frame; `Ok(None)` when the daemon closed cleanly. Used
    /// by stream consumers (`farmctl watch`) after a [`send`](Self::send).
    ///
    /// # Errors
    ///
    /// I/O or framing errors.
    pub fn recv(&mut self) -> io::Result<Option<Value>> {
        read_frame(&mut self.stream)
    }

    /// Sends one request and reads one response frame.
    ///
    /// # Errors
    ///
    /// I/O or framing errors; an early EOF is reported as such.
    pub fn request(&mut self, v: &Value) -> io::Result<Value> {
        write_frame(&mut self.stream, v)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-request",
            )
        })
    }

    /// Submits an inline scenario and returns the accepted job id.
    ///
    /// # Errors
    ///
    /// I/O errors, a `rejected` response (queue full / draining), or any
    /// other non-`accepted` reply.
    pub fn submit_scenario(&mut self, name: &str, scenario_src: &str) -> io::Result<u64> {
        let req = Value::Object(vec![
            ("op".into(), Value::String("submit".into())),
            ("name".into(), Value::String(name.into())),
            ("scenario".into(), Value::String(scenario_src.into())),
        ]);
        let resp = self.request(&req)?;
        match resp.get("type").and_then(Value::as_str) {
            Some("accepted") => resp
                .get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| io::Error::other("accepted response without a job id")),
            Some("rejected") => Err(io::Error::other(format!(
                "submission rejected: {} (retry_after_ms {})",
                resp.get("reason").and_then(Value::as_str).unwrap_or("?"),
                resp.get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
            ))),
            other => Err(io::Error::other(format!(
                "unexpected submit response type {other:?}"
            ))),
        }
    }

    /// Polls job status until the job reaches a terminal state
    /// (`completed` / `failed` / `cancelled`) and returns the final
    /// snapshot object.
    ///
    /// # Errors
    ///
    /// I/O errors, or an `error` response for an unknown job.
    pub fn wait(&mut self, id: u64, poll: Duration) -> io::Result<Value> {
        loop {
            let req = Value::Object(vec![
                ("op".into(), Value::String("status".into())),
                ("id".into(), Value::Number(id as f64)),
            ]);
            let resp = self.request(&req)?;
            if resp.get("type").and_then(Value::as_str) == Some("error") {
                return Err(io::Error::other(
                    resp.get("msg")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown status error")
                        .to_string(),
                ));
            }
            let snap = resp
                .get("jobs")
                .and_then(Value::as_array)
                .and_then(|jobs| jobs.first())
                .cloned()
                .ok_or_else(|| io::Error::other("status response without the job"))?;
            match snap.get("state").and_then(Value::as_str) {
                Some("completed") | Some("failed") | Some("cancelled") => return Ok(snap),
                _ => std::thread::sleep(poll),
            }
        }
    }

    /// Fetches a completed job's campaign rows.
    ///
    /// # Errors
    ///
    /// I/O errors, an `error` response, or rows that do not decode as
    /// [`ScenarioRow`](crate::scenarios::ScenarioRow)s.
    pub fn result_rows(&mut self, id: u64) -> io::Result<Vec<crate::scenarios::ScenarioRow>> {
        let req = Value::Object(vec![
            ("op".into(), Value::String("result".into())),
            ("id".into(), Value::Number(id as f64)),
        ]);
        let resp = self.request(&req)?;
        if resp.get("type").and_then(Value::as_str) == Some("error") {
            return Err(io::Error::other(
                resp.get("msg")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown result error")
                    .to_string(),
            ));
        }
        let rows = resp
            .get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| io::Error::other("result response without rows"))?;
        rows.iter()
            .map(|v| {
                crate::scenarios::scenario_row_from_json(v)
                    .ok_or_else(|| io::Error::other("row did not decode as a ScenarioRow"))
            })
            .collect()
    }
}

/// Runs the scenario campaign through a farm daemon at `addr`: submits
/// the source, waits for the job to finish, and returns its rows —
/// byte-identical to the in-process campaign, because the daemon runs
/// the same deterministic sweep (and resumes from its per-job journal if
/// it was interrupted along the way).
///
/// # Errors
///
/// Connection/protocol errors, a rejected submission, or a job that
/// terminated without completing.
pub fn submit_and_wait(
    addr: &str,
    name: &str,
    scenario_src: &str,
) -> io::Result<Vec<crate::scenarios::ScenarioRow>> {
    let mut client = FarmClient::connect(addr)?;
    let id = client.submit_scenario(name, scenario_src)?;
    let snap = client.wait(id, Duration::from_millis(250))?;
    match snap.get("state").and_then(Value::as_str) {
        Some("completed") => client.result_rows(id),
        other => Err(io::Error::other(format!(
            "job {id} ended in state {other:?} instead of completing"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = Value::Object(vec![
            ("op".into(), Value::String("ping".into())),
            ("n".into(), Value::Number(7.0)),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, v);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_and_oversized_frames_are_errors_not_panics() {
        // Torn: header promises more bytes than the stream holds.
        let mut torn = io::Cursor::new(vec![0, 0, 0, 9, b'{']);
        assert!(read_frame(&mut torn).is_err());
        // Oversized header.
        let mut big = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(read_frame(&mut big).is_err());
        // Garbage payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&3u32.to_be_bytes());
        bad.extend_from_slice(b"}{x");
        assert!(read_frame(&mut io::Cursor::new(bad)).is_err());
    }
}

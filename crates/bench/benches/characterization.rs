//! Classic NoC characterization benches: latency-vs-load curves per
//! topology under synthetic patterns, and raw simulator throughput.

use adaptnoc_bench::microbench::bench;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use std::hint::black_box;

fn topo_spec(kind: TopologyKind) -> adaptnoc_sim::spec::NetworkSpec {
    build_chip_spec(
        Grid::paper(),
        &[RegionTopology::new(Rect::new(0, 0, 8, 8), kind)],
        &SimConfig::adapt_noc(),
    )
    .unwrap()
}

/// Latency under uniform traffic at fixed load, per topology.
fn latency_vs_topology() {
    for kind in [TopologyKind::Mesh, TopologyKind::Cmesh, TopologyKind::Torus] {
        bench("uniform_load_latency", kind.name(), 3, || {
            let mut net = Network::new(topo_spec(kind), SimConfig::adapt_noc()).unwrap();
            let mut inj = SyntheticInjector::new(
                Grid::paper(),
                Rect::new(0, 0, 8, 8),
                Pattern::Uniform,
                0.05,
                1,
            );
            for _ in 0..3_000 {
                inj.tick(&mut net);
                net.step();
            }
            black_box(net.totals().stats.avg_packet_latency())
        });
    }
}

/// Hotspot (all-to-MC) traffic: the pattern the tree topology targets.
fn hotspot_traffic() {
    for kind in [TopologyKind::Mesh, TopologyKind::Tree] {
        bench("hotspot_latency", kind.name(), 3, || {
            let grid = Grid::paper();
            let mut net = Network::new(topo_spec(kind), SimConfig::adapt_noc()).unwrap();
            let hot = grid.node(Coord::new(0, 0));
            let mut inj =
                SyntheticInjector::new(grid, Rect::new(0, 0, 8, 8), Pattern::Hotspot(hot), 0.01, 2);
            for _ in 0..3_000 {
                inj.tick(&mut net);
                net.step();
            }
            black_box(net.totals().stats.avg_packet_latency())
        });
    }
}

/// Raw simulator speed: cycles per second at a moderate load (the number
/// that sizes every experiment above).
fn simulator_throughput() {
    bench("sim_throughput", "mesh_8x8_10k_cycles", 3, || {
        let cfg = SimConfig::baseline();
        let mut net = Network::new(mesh_chip(Grid::paper(), &cfg).unwrap(), cfg).unwrap();
        let mut inj = SyntheticInjector::new(
            Grid::paper(),
            Rect::new(0, 0, 8, 8),
            Pattern::Uniform,
            0.1,
            3,
        );
        for _ in 0..10_000 {
            inj.tick(&mut net);
            net.step();
        }
        black_box(net.totals().stats.packets)
    });
}

fn main() {
    latency_vs_topology();
    hotspot_traffic();
    simulator_throughput();
}

//! Ablation benches for the design choices DESIGN.md calls out:
//! injection bypass, VC count (the buffer-area trade), control policy, and
//! reconfiguration-cost sensitivity.

use adaptnoc_bench::microbench::bench;
use adaptnoc_bench::prelude::*;
use adaptnoc_core::prelude::*;
use adaptnoc_rl::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::prelude::Packet;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use std::hint::black_box;

/// Latency of a fixed traffic batch on a mesh with/without the NI bypass.
fn ablation_bypass() {
    for bypass in [false, true] {
        bench(
            "ablation_bypass",
            if bypass { "bypass_on" } else { "bypass_off" },
            3,
            || {
                let mut cfg = SimConfig::adapt_noc();
                cfg.injection_bypass = bypass;
                let grid = Grid::new(4, 4);
                let spec = mesh_chip(grid, &cfg).unwrap();
                let mut net = Network::new(spec, cfg).unwrap();
                let mut id = 0;
                for c1 in grid.iter() {
                    for c2 in grid.iter() {
                        if c1 != c2 {
                            id += 1;
                            net.inject(Packet::request(id, grid.node(c1), grid.node(c2), 0))
                                .unwrap();
                        }
                    }
                }
                while net.in_flight() > 0 {
                    net.step();
                }
                black_box(net.totals().stats.avg_network_latency())
            },
        );
    }
}

/// The buffer-area trade: 2 vs 3 VCs per vnet under GPU load.
fn ablation_vc_count() {
    for vcs in [2u8, 3] {
        bench("ablation_vc_count", &format!("{vcs}_vcs"), 3, || {
            let mut cfg = SimConfig::adapt_noc();
            cfg.vcs_per_vnet = vcs;
            let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), true);
            let spec = mesh_chip(layout.grid, &cfg).unwrap();
            let mut net = Network::new(spec, cfg).unwrap();
            let mut wl = Workload::new(&layout, &[by_name("KM").unwrap()], 3);
            for _ in 0..5_000 {
                wl.tick(&mut net);
                net.step();
            }
            black_box(wl.apps[0].epoch.avg_queuing_latency())
        });
    }
}

/// Control policies: fixed vs tabular-Q vs DQN inference cost inside the
/// controller loop.
fn ablation_policy() {
    let run_policy = |policy: TopologyPolicy| {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let rc = RunConfig {
            epoch_cycles: 2_000,
            epochs: 2,
            warmup_epochs: 0,
            ..Default::default()
        };
        run_design(
            DesignKind::AdaptNoc,
            &layout,
            &[by_name("BS").unwrap()],
            vec![policy],
            &rc,
        )
        .unwrap()
    };
    bench("ablation_policy", "fixed", 3, || {
        black_box(run_policy(TopologyPolicy::Fixed(TopologyKind::Cmesh)))
    });
    bench("ablation_policy", "qtable", 3, || {
        black_box(run_policy(TopologyPolicy::QTable(QTableAgent::new(
            4, 4, 1,
        ))))
    });
    bench("ablation_policy", "dqn_learning", 3, || {
        black_box(run_policy(TopologyPolicy::Learning(DqnAgent::new(
            DqnConfig::default(),
            1,
        ))))
    });
}

/// Reconfiguration-cost sensitivity: protocol latency vs `T_s`.
fn ablation_reconfig_cost() {
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let mesh =
        build_chip_spec(grid, &[RegionTopology::new(rect, TopologyKind::Mesh)], &cfg).unwrap();
    let torus = build_chip_spec(
        grid,
        &[RegionTopology::new(rect, TopologyKind::Torus)],
        &cfg,
    )
    .unwrap();
    for t_s in [7u64, 14, 28] {
        bench("ablation_reconfig_ts", &format!("ts_{t_s}"), 3, || {
            let mut net = Network::new(mesh.clone(), cfg.clone()).unwrap();
            let timing = ReconfigTiming {
                t_s,
                ..Default::default()
            };
            let mut rc = RegionReconfig::start(
                &net,
                &grid,
                rect,
                torus.clone(),
                Some(mesh.tables.clone()),
                timing,
            );
            loop {
                net.step();
                if rc.tick(&mut net, &grid).unwrap() {
                    break;
                }
            }
            black_box(rc.latency(net.now()))
        });
    }
}

fn main() {
    ablation_bypass();
    ablation_vc_count();
    ablation_policy();
    ablation_reconfig_cost();
}

//! Wall-clock cost of the fault-injection machinery: a transient-burst
//! campaign (NACK + retry path) and a single permanent-link campaign
//! (degraded rebuild + live reconfiguration).

use adaptnoc_bench::microbench::bench;
use adaptnoc_bench::prelude::*;
use std::hint::black_box;

fn main() {
    bench("faults", "transient_burst_seeded", 3, || {
        // fault_sweep runs all four scenarios; keep only the transient rows
        // alive so the optimizer can't drop the campaign.
        let rows = fault_sweep(&[1]).unwrap();
        black_box(
            rows.into_iter()
                .filter(|r| r.scenario == "transient-burst")
                .count(),
        )
    });
    bench("faults", "full_sweep_three_seeds", 1, || {
        black_box(fault_sweep(&[1, 2, 3]).unwrap().len())
    });
}

//! Wall-clock benches wrapping the paper's experiments at reduced scale.
//!
//! One bench per evaluation artifact: the mixed-workload campaign behind
//! Figs. 7/10-13, the per-suite runs behind Figs. 8/9, the RL pipeline
//! behind Figs. 14-19, and the analytic overhead tables. Bench time
//! measures the cost of regenerating each artifact; correctness lives in
//! the test suites.

use adaptnoc_bench::microbench::bench;
use adaptnoc_bench::prelude::*;
use adaptnoc_core::prelude::*;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use std::hint::black_box;

fn bench_rc() -> RunConfig {
    RunConfig {
        epoch_cycles: 3_000,
        epochs: 1,
        warmup_epochs: 1,
        ..Default::default()
    }
}

/// Fig. 7 / 10-13 substrate: one design on the mixed workload.
fn fig07_latency() {
    let layout = ChipLayout::paper_mixed();
    let profiles = vec![
        by_name("CA").unwrap(),
        by_name("KM").unwrap(),
        by_name("BP").unwrap(),
    ];
    for kind in [
        DesignKind::Baseline,
        DesignKind::Ftby,
        DesignKind::AdaptNocNoRl,
    ] {
        bench("fig07_mixed_latency", kind.name(), 3, || {
            let policies = if kind.is_adaptive() {
                fixed_policies(&[TopologyKind::Cmesh, TopologyKind::Tree, TopologyKind::Torus])
            } else {
                vec![]
            };
            let r = run_design(kind, &layout, &profiles, policies, &bench_rc()).unwrap();
            black_box(r.packet_latency())
        });
    }
}

/// Fig. 8/9 substrate: one benchmark in its subNoC across topologies.
fn fig08_09_per_app() {
    for (name, gpu) in [("CA", false), ("KM", true)] {
        let rect = if gpu {
            Rect::new(0, 0, 4, 8)
        } else {
            Rect::new(0, 0, 4, 4)
        };
        let layout = ChipLayout::single(rect, gpu);
        let profile = by_name(name).unwrap();
        bench("fig08_09_per_app", name, 3, || {
            let r = run_design(
                DesignKind::AdaptNocNoRl,
                &layout,
                std::slice::from_ref(&profile),
                fixed_policies(&[TopologyKind::Cmesh]),
                &bench_rc(),
            )
            .unwrap();
            black_box(r.hops)
        });
    }
}

/// Figs. 14/15/18/19 substrate: DQN training + deployment.
fn fig14_19_rl_pipeline() {
    bench("fig14_19_rl", "train_tiny_dqn", 3, || {
        let policy = train_dqn(
            &[TrainScenario {
                rect: Rect::new(0, 0, 4, 4),
                profile: by_name("BP").unwrap(),
            }],
            &TrainConfig::tiny(),
            None,
        )
        .unwrap();
        black_box(policy.decide_greedy(&[0.5; 12]))
    });
    let policy = train_dqn(
        &[TrainScenario {
            rect: Rect::new(0, 0, 4, 4),
            profile: by_name("BP").unwrap(),
        }],
        &TrainConfig::tiny(),
        None,
    )
    .unwrap();
    let state = vec![0.4; 12];
    bench("fig14_19_rl", "deploy_inference", 100, || {
        black_box(policy.q_values(&state))
    });
}

/// Fig. 16 substrate: RL vs static on one subNoC size.
fn fig16_sizes() {
    for (w, h) in [(2u8, 4u8), (4, 8)] {
        let layout = ChipLayout::single(Rect::new(0, 0, w, h), true);
        let profile = by_name("BP").unwrap();
        bench("fig16_sizes", &format!("{w}x{h}"), 3, || {
            let r = run_design(
                DesignKind::AdaptNocNoRl,
                &layout,
                std::slice::from_ref(&profile),
                fixed_policies(&[TopologyKind::Torus]),
                &bench_rc(),
            )
            .unwrap();
            black_box(r.packet_latency())
        });
    }
}

/// Fig. 17 substrate: reconfiguration cadence cost.
fn fig17_epoch_size() {
    for epoch in [2_000u64, 8_000] {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profile = by_name("X264").unwrap();
        bench("fig17_epoch", &format!("epoch_{epoch}"), 3, || {
            let rc = RunConfig {
                epoch_cycles: epoch,
                epochs: 2,
                warmup_epochs: 0,
                ..Default::default()
            };
            let r = run_design(
                DesignKind::AdaptNocNoRl,
                &layout,
                std::slice::from_ref(&profile),
                fixed_policies(&[TopologyKind::Cmesh]),
                &rc,
            )
            .unwrap();
            black_box(r.reconfigs)
        });
    }
}

/// Sec. V-B tables: analytic models.
fn tables_overheads() {
    bench("tables", "area", 10, || black_box(area_table()));
    bench("tables", "wiring", 10, || {
        black_box(wiring_table().unwrap())
    });
    bench("tables", "timing", 10, || black_box(timing_table()));
    bench("tables", "reconfig_walkthrough", 3, || {
        black_box(reconfig_table().unwrap())
    });
}

fn main() {
    fig07_latency();
    fig08_09_per_app();
    fig14_19_rl_pipeline();
    fig16_sizes();
    fig17_epoch_size();
    tables_overheads();
}

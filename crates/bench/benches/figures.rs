//! Criterion benches wrapping the paper's experiments at reduced scale.
//!
//! One bench group per evaluation artifact: the mixed-workload campaign
//! behind Figs. 7/10-13, the per-suite runs behind Figs. 8/9, the RL
//! pipeline behind Figs. 14-19, and the analytic overhead tables. Bench
//! time measures the cost of regenerating each artifact; correctness lives
//! in the test suites.

use adaptnoc_bench::prelude::*;
use adaptnoc_core::prelude::*;
use adaptnoc_topology::prelude::*;
use adaptnoc_workloads::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_rc() -> RunConfig {
    RunConfig {
        epoch_cycles: 3_000,
        epochs: 1,
        warmup_epochs: 1,
        ..Default::default()
    }
}

/// Fig. 7 / 10-13 substrate: one design on the mixed workload.
fn fig07_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_mixed_latency");
    g.sample_size(10);
    let layout = ChipLayout::paper_mixed();
    let profiles = vec![
        by_name("CA").unwrap(),
        by_name("KM").unwrap(),
        by_name("BP").unwrap(),
    ];
    for kind in [DesignKind::Baseline, DesignKind::Ftby, DesignKind::AdaptNocNoRl] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let policies = if kind.is_adaptive() {
                    fixed_policies(&[
                        TopologyKind::Cmesh,
                        TopologyKind::Tree,
                        TopologyKind::Torus,
                    ])
                } else {
                    vec![]
                };
                let r = run_design(kind, &layout, &profiles, policies, &bench_rc()).unwrap();
                black_box(r.packet_latency())
            })
        });
    }
    g.finish();
}

/// Fig. 8/9 substrate: one benchmark in its subNoC across topologies.
fn fig08_09_per_app(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_09_per_app");
    g.sample_size(10);
    for (name, gpu) in [("CA", false), ("KM", true)] {
        let rect = if gpu {
            Rect::new(0, 0, 4, 8)
        } else {
            Rect::new(0, 0, 4, 4)
        };
        let layout = ChipLayout::single(rect, gpu);
        let profile = by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run_design(
                    DesignKind::AdaptNocNoRl,
                    &layout,
                    std::slice::from_ref(&profile),
                    fixed_policies(&[TopologyKind::Cmesh]),
                    &bench_rc(),
                )
                .unwrap();
                black_box(r.hops)
            })
        });
    }
    g.finish();
}

/// Figs. 14/15/18/19 substrate: DQN training + deployment.
fn fig14_19_rl_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_19_rl");
    g.sample_size(10);
    g.bench_function("train_tiny_dqn", |b| {
        b.iter(|| {
            let policy = train_dqn(
                &[TrainScenario {
                    rect: Rect::new(0, 0, 4, 4),
                    profile: by_name("BP").unwrap(),
                }],
                &TrainConfig::tiny(),
                None,
            )
            .unwrap();
            black_box(policy.decide_greedy(&[0.5; 12]))
        })
    });
    g.bench_function("deploy_inference", |b| {
        let policy = train_dqn(
            &[TrainScenario {
                rect: Rect::new(0, 0, 4, 4),
                profile: by_name("BP").unwrap(),
            }],
            &TrainConfig::tiny(),
            None,
        )
        .unwrap();
        let state = vec![0.4; 12];
        b.iter(|| black_box(policy.q_values(&state)))
    });
    g.finish();
}

/// Fig. 16 substrate: RL vs static on one subNoC size.
fn fig16_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_sizes");
    g.sample_size(10);
    for (w, h) in [(2u8, 4u8), (4, 8)] {
        let layout = ChipLayout::single(Rect::new(0, 0, w, h), true);
        let profile = by_name("BP").unwrap();
        g.bench_function(format!("{w}x{h}"), |b| {
            b.iter(|| {
                let r = run_design(
                    DesignKind::AdaptNocNoRl,
                    &layout,
                    std::slice::from_ref(&profile),
                    fixed_policies(&[TopologyKind::Torus]),
                    &bench_rc(),
                )
                .unwrap();
                black_box(r.packet_latency())
            })
        });
    }
    g.finish();
}

/// Fig. 17 substrate: reconfiguration cadence cost.
fn fig17_epoch_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_epoch");
    g.sample_size(10);
    for epoch in [2_000u64, 8_000] {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let profile = by_name("X264").unwrap();
        g.bench_function(format!("epoch_{epoch}"), |b| {
            b.iter(|| {
                let rc = RunConfig {
                    epoch_cycles: epoch,
                    epochs: 2,
                    warmup_epochs: 0,
                    ..Default::default()
                };
                let r = run_design(
                    DesignKind::AdaptNocNoRl,
                    &layout,
                    std::slice::from_ref(&profile),
                    fixed_policies(&[TopologyKind::Cmesh]),
                    &rc,
                )
                .unwrap();
                black_box(r.reconfigs)
            })
        });
    }
    g.finish();
}

/// Sec. V-B tables: analytic models.
fn tables_overheads(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("area", |b| b.iter(|| black_box(area_table())));
    g.bench_function("wiring", |b| b.iter(|| black_box(wiring_table().unwrap())));
    g.bench_function("timing", |b| b.iter(|| black_box(timing_table())));
    g.sample_size(10);
    g.bench_function("reconfig_walkthrough", |b| {
        b.iter(|| black_box(reconfig_table().unwrap()))
    });
    g.finish();
}

criterion_group!(
    figures,
    fig07_latency,
    fig08_09_per_app,
    fig14_19_rl_pipeline,
    fig16_sizes,
    fig17_epoch_size,
    tables_overheads
);
criterion_main!(figures);

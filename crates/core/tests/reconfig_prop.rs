//! Property tests for the reconfiguration protocol: arbitrary topology
//! sequences under continuous traffic never lose a packet, never produce an
//! unroutable event, and always land in a valid, deadlock-free
//! configuration.

use adaptnoc_core::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::prelude::{NodeId, Packet};
use adaptnoc_topology::prelude::*;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Mesh),
        Just(TopologyKind::Cmesh),
        Just(TopologyKind::Torus),
        Just(TopologyKind::Tree),
    ]
}

fn spec_of(kind: TopologyKind, rect: Rect, cfg: &SimConfig) -> adaptnoc_sim::spec::NetworkSpec {
    build_chip_spec(Grid::paper(), &[RegionTopology::new(rect, kind)], cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A random sequence of topology switches under random traffic is
    /// lossless and ends in a validated configuration.
    #[test]
    fn random_reconfig_sequences_are_lossless(
        seq in prop::collection::vec(kind_strategy(), 1..5),
        inject_period in 3u64..20,
    ) {
        let grid = Grid::paper();
        let rect = Rect::new(0, 0, 4, 4);
        let cfg = SimConfig::adapt_noc();
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let mut net = Network::new(spec_of(TopologyKind::Mesh, rect, &cfg), cfg.clone()).unwrap();

        let mut current = TopologyKind::Mesh;
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for &target in &seq {
            if target == current {
                continue;
            }
            let fast = keeps_mesh(current) && keeps_mesh(target);
            let transitional = fast.then(|| spec_of(TopologyKind::Mesh, rect, &cfg).tables);
            let mut rc = RegionReconfig::start(
                &net,
                &grid,
                rect,
                spec_of(target, rect, &cfg),
                transitional,
                ReconfigTiming::default(),
            );
            let mut guard = 0u64;
            loop {
                if net.now().is_multiple_of(inject_period) {
                    let s = nodes[(net.now() as usize * 7) % nodes.len()];
                    let d = nodes[(net.now() as usize * 3 + 5) % nodes.len()];
                    if s != d {
                        injected += 1;
                        net.inject(Packet::reply(injected, s, d, 0)).unwrap();
                    }
                }
                net.step();
                delivered += net.drain_delivered().len() as u64;
                if rc.tick(&mut net, &grid).unwrap() {
                    break;
                }
                guard += 1;
                prop_assert!(guard < 100_000, "reconfig to {target} hung");
            }
            current = target;
        }
        // Drain.
        let mut guard = 0u64;
        while net.in_flight() > 0 {
            net.step();
            delivered += net.drain_delivered().len() as u64;
            guard += 1;
            prop_assert!(guard < 200_000, "drain hung");
        }
        prop_assert_eq!(injected, delivered, "packets lost across reconfigs");
        prop_assert_eq!(net.unroutable_events(), 0);

        // Final configuration is valid and deadlock-free.
        let pairs = all_pairs(&nodes);
        check_routes_and_deadlock(net.spec(), &pairs).unwrap();
        check_adaptable_links(&grid, net.spec()).unwrap();
    }

    /// Region position does not matter: the protocol works for subNoCs
    /// anywhere on the chip.
    #[test]
    fn reconfig_works_at_any_region_position(
        x in 0u8..5,
        y in 0u8..5,
        target in kind_strategy(),
    ) {
        let grid = Grid::paper();
        let rect = Rect::new(x & !1, y & !1, 4, 4);
        prop_assume!(rect.fits(&grid));
        let cfg = SimConfig::adapt_noc();
        let mk = |k: TopologyKind| {
            build_chip_spec(grid, &[RegionTopology::new(rect, k)], &cfg).unwrap()
        };
        let mut net = Network::new(mk(TopologyKind::Mesh), cfg.clone()).unwrap();
        let fast = keeps_mesh(target);
        let transitional = fast.then(|| mk(TopologyKind::Mesh).tables);
        let mut rc = RegionReconfig::start(
            &net,
            &grid,
            rect,
            mk(target),
            transitional,
            ReconfigTiming::default(),
        );
        let mut done = false;
        for _ in 0..50_000 {
            net.step();
            if rc.tick(&mut net, &grid).unwrap() {
                done = true;
                break;
            }
        }
        prop_assert!(done);
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(net.spec(), &all_pairs(&nodes)).unwrap();
    }
}

//! Randomized tests for the reconfiguration protocol: arbitrary topology
//! sequences under continuous traffic never lose a packet, never produce an
//! unroutable event, and always land in a valid, deadlock-free
//! configuration. Cases come from the in-tree seeded PRNG.

use adaptnoc_core::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::prelude::{NodeId, Packet};
use adaptnoc_sim::rng::Rng;
use adaptnoc_topology::prelude::*;

const KINDS: [TopologyKind; 4] = [
    TopologyKind::Mesh,
    TopologyKind::Cmesh,
    TopologyKind::Torus,
    TopologyKind::Tree,
];

fn random_kind(rng: &mut Rng) -> TopologyKind {
    KINDS[rng.random_below(KINDS.len())]
}

fn spec_of(kind: TopologyKind, rect: Rect, cfg: &SimConfig) -> adaptnoc_sim::spec::NetworkSpec {
    build_chip_spec(Grid::paper(), &[RegionTopology::new(rect, kind)], cfg).unwrap()
}

/// A random sequence of topology switches under random traffic is
/// lossless and ends in a validated configuration.
#[test]
fn random_reconfig_sequences_are_lossless() {
    let mut rng = Rng::seed_from_u64(0x5EC5);
    for _case in 0..20 {
        let seq: Vec<TopologyKind> = (0..rng.random_range(1, 5))
            .map(|_| random_kind(&mut rng))
            .collect();
        let inject_period = rng.random_range(3, 20) as u64;
        let grid = Grid::paper();
        let rect = Rect::new(0, 0, 4, 4);
        let cfg = SimConfig::adapt_noc();
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let mut net = Network::new(spec_of(TopologyKind::Mesh, rect, &cfg), cfg.clone()).unwrap();

        let mut current = TopologyKind::Mesh;
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for &target in &seq {
            if target == current {
                continue;
            }
            let fast = keeps_mesh(current) && keeps_mesh(target);
            let transitional = fast.then(|| spec_of(TopologyKind::Mesh, rect, &cfg).tables);
            let mut rc = RegionReconfig::start(
                &net,
                &grid,
                rect,
                spec_of(target, rect, &cfg),
                transitional,
                ReconfigTiming::default(),
            );
            let mut guard = 0u64;
            loop {
                if net.now().is_multiple_of(inject_period) {
                    let s = nodes[(net.now() as usize * 7) % nodes.len()];
                    let d = nodes[(net.now() as usize * 3 + 5) % nodes.len()];
                    if s != d {
                        injected += 1;
                        net.inject(Packet::reply(injected, s, d, 0)).unwrap();
                    }
                }
                net.step();
                delivered += net.drain_delivered().len() as u64;
                if rc.tick(&mut net, &grid).unwrap() {
                    break;
                }
                guard += 1;
                assert!(guard < 100_000, "reconfig to {target} hung");
            }
            current = target;
        }
        // Drain.
        let mut guard = 0u64;
        while net.in_flight() > 0 {
            net.step();
            delivered += net.drain_delivered().len() as u64;
            guard += 1;
            assert!(guard < 200_000, "drain hung");
        }
        assert_eq!(injected, delivered, "packets lost across reconfigs");
        assert_eq!(net.unroutable_events(), 0);

        // Final configuration is valid and deadlock-free.
        let pairs = all_pairs(&nodes);
        check_routes_and_deadlock(net.spec(), &pairs).unwrap();
        check_adaptable_links(&grid, net.spec()).unwrap();
    }
}

/// The reconfiguration protocol is oblivious to region-parallel stepping:
/// a serial network and a parallel one (2 and 4 threads) driven through
/// the same topology switch under the same traffic produce identical
/// delivery histories and identical final configurations.
#[test]
fn region_reconfig_history_identical_under_parallel_stepping() {
    use adaptnoc_sim::prelude::StepPool;

    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
    for (threads, target) in [(2, TopologyKind::Torus), (4, TopologyKind::Cmesh)] {
        let run = |mut step: Box<dyn FnMut(&mut Network)>| {
            let mut net =
                Network::new(spec_of(TopologyKind::Mesh, rect, &cfg), cfg.clone()).unwrap();
            let fast = keeps_mesh(TopologyKind::Mesh) && keeps_mesh(target);
            let transitional = fast.then(|| spec_of(TopologyKind::Mesh, rect, &cfg).tables);
            let mut rc = RegionReconfig::start(
                &net,
                &grid,
                rect,
                spec_of(target, rect, &cfg),
                transitional,
                ReconfigTiming::default(),
            );
            let mut injected = 0u64;
            let mut history: Vec<(u64, u64)> = Vec::new();
            let mut done = false;
            for _ in 0..50_000 {
                if !done && net.now().is_multiple_of(5) {
                    let s = nodes[(net.now() as usize * 7) % nodes.len()];
                    let d = nodes[(net.now() as usize * 3 + 5) % nodes.len()];
                    if s != d {
                        injected += 1;
                        net.inject(Packet::reply(injected, s, d, 0)).unwrap();
                    }
                }
                step(&mut net);
                history.extend(
                    net.drain_delivered()
                        .iter()
                        .map(|d| (d.packet.id, d.ejected_at)),
                );
                if !done && rc.tick(&mut net, &grid).unwrap() {
                    done = true;
                }
                if done && net.in_flight() == 0 {
                    break;
                }
            }
            assert!(done, "reconfig did not finish");
            assert_eq!(net.in_flight(), 0, "drain did not finish");
            (history, net.totals(), net.now())
        };
        let serial = run(Box::new(|n: &mut Network| n.step()));
        let mut pool = StepPool::new(threads);
        let parallel = run(Box::new(move |n: &mut Network| n.step_parallel(&mut pool)));
        assert_eq!(
            serial, parallel,
            "reconfig history diverged at {threads} threads"
        );
    }
}

/// Region position does not matter: the protocol works for subNoCs
/// anywhere on the chip.
#[test]
fn reconfig_works_at_any_region_position() {
    let mut rng = Rng::seed_from_u64(0x9051);
    for _case in 0..20 {
        let x = rng.random_below(5) as u8;
        let y = rng.random_below(5) as u8;
        let target = random_kind(&mut rng);
        let grid = Grid::paper();
        let rect = Rect::new(x & !1, y & !1, 4, 4);
        if !rect.fits(&grid) {
            continue;
        }
        let cfg = SimConfig::adapt_noc();
        let mk =
            |k: TopologyKind| build_chip_spec(grid, &[RegionTopology::new(rect, k)], &cfg).unwrap();
        let mut net = Network::new(mk(TopologyKind::Mesh), cfg.clone()).unwrap();
        let fast = keeps_mesh(target);
        let transitional = fast.then(|| mk(TopologyKind::Mesh).tables);
        let mut rc = RegionReconfig::start(
            &net,
            &grid,
            rect,
            mk(target),
            transitional,
            ReconfigTiming::default(),
        );
        let mut done = false;
        for _ in 0..50_000 {
            net.step();
            if rc.tick(&mut net, &grid).unwrap() {
                done = true;
                break;
            }
        }
        assert!(done);
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(net.spec(), &all_pairs(&nodes)).unwrap();
    }
}

//! # adaptnoc-core
//!
//! The paper's primary contribution: the Adapt-NoC flexible NoC
//! architecture (HPCA 2021) — adaptable links with segmentation and
//! reversal, the adaptable-router resource model, external concentration,
//! dynamic subNoC allocation and deadlock-free reconfiguration,
//! memory-controller sharing, the per-subNoC RL control layer, and the
//! seven evaluated designs (baseline mesh, OSCAR, Shortcut, FTBY, FTBY_PG,
//! Adapt-NoC-noRL, Adapt-NoC).
//!
//! ```
//! use adaptnoc_core::prelude::*;
//! use adaptnoc_topology::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the RL-controlled Adapt-NoC on a single-app 4x4 chip.
//! let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
//! let policy = TopologyPolicy::Fixed(TopologyKind::Cmesh);
//! let mut design = Design::build(DesignKind::AdaptNocNoRl, layout, &[], vec![policy], 1)?;
//! design.net.run(100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptable_link;
pub mod allocator;
pub mod controller;
pub mod designs;
pub mod layout;
pub mod mc_sharing;
pub mod policies;
pub mod reconfig;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adaptable_link::{check_adaptable_links, segment_of, Line, Segment, Wire};
    pub use crate::allocator::{AllocError, Allocation, SubNocAllocator};
    pub use crate::controller::{
        AdaptController, ControlError, McShare, RegionTelemetry, TopologyPolicy,
    };
    pub use crate::designs::{Design, DesignKind, DesignRuntime};
    pub use crate::layout::{AppRegion, ChipLayout, NodeKind};
    pub use crate::mc_sharing::{add_mc_bridge, McBridge};
    pub use crate::policies::{OscarPolicy, PowerGatePolicy};
    pub use crate::reconfig::{keeps_mesh, ReconfigStage, ReconfigTiming, RegionReconfig};
}

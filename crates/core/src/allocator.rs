//! Dynamic subNoC allocation (Sec. II-C1).
//!
//! "The nature of dynamic subNoC allocation is to allocate a collection of
//! cores, memory modules, routers, and links within a region of the
//! manycore architecture." Applications arrive asking for a number of
//! cores; the allocator places each in a free rectangle (so the region can
//! be composed into any subNoC topology), preferring placements that keep
//! an MC tile inside the region and minimize fragmentation. Departing
//! applications free their rectangles for reuse.

use crate::layout::mc_blocks;
use adaptnoc_topology::geom::{Coord, Grid, Rect};
use std::collections::HashMap;

/// A granted allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Caller-chosen application id.
    pub app: u64,
    /// The granted rectangle.
    pub rect: Rect,
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No free rectangle of a suitable shape exists.
    NoSpace {
        /// Tiles requested.
        tiles: usize,
    },
    /// The app id is already allocated.
    Duplicate(u64),
    /// The app id is unknown (for `free`).
    Unknown(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NoSpace { tiles } => {
                write!(f, "no free rectangle for {tiles} tiles")
            }
            AllocError::Duplicate(a) => write!(f, "app {a} already allocated"),
            AllocError::Unknown(a) => write!(f, "app {a} not allocated"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The dynamic subNoC allocator.
#[derive(Debug, Clone)]
pub struct SubNocAllocator {
    grid: Grid,
    occupied: Vec<bool>,
    allocations: HashMap<u64, Rect>,
}

impl SubNocAllocator {
    /// Creates an allocator over an empty chip.
    pub fn new(grid: Grid) -> Self {
        SubNocAllocator {
            grid,
            occupied: vec![false; grid.tiles()],
            allocations: HashMap::new(),
        }
    }

    /// Current allocations.
    pub fn allocations(&self) -> Vec<Allocation> {
        let mut v: Vec<Allocation> = self
            .allocations
            .iter()
            .map(|(&app, &rect)| Allocation { app, rect })
            .collect();
        v.sort_by_key(|a| a.app);
        v
    }

    /// Free tiles remaining.
    pub fn free_tiles(&self) -> usize {
        self.occupied.iter().filter(|o| !**o).count()
    }

    /// The rectangle shapes considered for `tiles` cores, largest-square
    /// first (square-ish regions keep subNoC diameters low), constrained to
    /// even dimensions where possible so cmesh stays available.
    fn candidate_shapes(&self, tiles: usize) -> Vec<(u8, u8)> {
        let mut shapes = Vec::new();
        for h in 1..=self.grid.height {
            for w in 1..=self.grid.width {
                if (w as usize) * (h as usize) >= tiles {
                    shapes.push((w, h));
                }
            }
        }
        // Prefer: minimal waste, then squareness, then cmesh-compatibility.
        shapes.sort_by_key(|&(w, h)| {
            let waste = (w as usize * h as usize) - tiles;
            let skew = (w as i16 - h as i16).unsigned_abs();
            let odd = u16::from(w % 2 != 0 || h % 2 != 0);
            (waste, odd, skew)
        });
        shapes.truncate(12);
        shapes
    }

    fn fits_free(&self, rect: Rect) -> bool {
        rect.fits(&self.grid)
            && rect
                .iter()
                .all(|c| !self.occupied[self.grid.node(c).index()])
    }

    /// Allocates a rectangle with at least `tiles` tiles for `app`.
    /// Placement is first-fit over the preferred shapes, scanning
    /// bottom-left to top-right (keeping free space contiguous).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NoSpace`] if nothing fits or
    /// [`AllocError::Duplicate`] if the app already holds a region.
    pub fn allocate(&mut self, app: u64, tiles: usize) -> Result<Allocation, AllocError> {
        if self.allocations.contains_key(&app) {
            return Err(AllocError::Duplicate(app));
        }
        for (w, h) in self.candidate_shapes(tiles) {
            for y in 0..=self.grid.height.saturating_sub(h) {
                for x in 0..=self.grid.width.saturating_sub(w) {
                    let rect = Rect::new(x, y, w, h);
                    if self.fits_free(rect) {
                        for c in rect.iter() {
                            self.occupied[self.grid.node(c).index()] = true;
                        }
                        self.allocations.insert(app, rect);
                        return Ok(Allocation { app, rect });
                    }
                }
            }
        }
        Err(AllocError::NoSpace { tiles })
    }

    /// Frees an application's region.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Unknown`] for unallocated apps.
    pub fn free(&mut self, app: u64) -> Result<Rect, AllocError> {
        let rect = self
            .allocations
            .remove(&app)
            .ok_or(AllocError::Unknown(app))?;
        for c in rect.iter() {
            self.occupied[self.grid.node(c).index()] = false;
        }
        Ok(rect)
    }

    /// The MC tiles of an allocation, per the 2x4-block recipe.
    pub fn mc_tiles(&self, app: u64) -> Option<Vec<Coord>> {
        self.allocations
            .get(&app)
            .map(|r| mc_blocks(*r).iter().map(|b| b.origin()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> SubNocAllocator {
        SubNocAllocator::new(Grid::paper())
    }

    #[test]
    fn allocates_disjoint_rectangles() {
        let mut a = alloc();
        let r1 = a.allocate(1, 16).unwrap().rect;
        let r2 = a.allocate(2, 16).unwrap().rect;
        let r3 = a.allocate(3, 32).unwrap().rect;
        assert!(!r1.overlaps(&r2));
        assert!(!r1.overlaps(&r3));
        assert!(!r2.overlaps(&r3));
        assert_eq!(a.free_tiles(), 0);
    }

    #[test]
    fn prefers_square_even_shapes() {
        let mut a = alloc();
        let r = a.allocate(1, 16).unwrap().rect;
        assert_eq!((r.w, r.h), (4, 4));
        let r = a.allocate(2, 8).unwrap().rect;
        assert!(
            r.w.is_multiple_of(2) && r.h.is_multiple_of(2),
            "cmesh-compatible {r}"
        );
        assert_eq!(r.tiles(), 8);
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        let mut a = alloc();
        a.allocate(1, 4).unwrap();
        assert_eq!(a.allocate(1, 4), Err(AllocError::Duplicate(1)));
        assert_eq!(a.free(9), Err(AllocError::Unknown(9)));
    }

    #[test]
    fn no_space_reported() {
        let mut a = alloc();
        a.allocate(1, 64).unwrap();
        assert_eq!(a.allocate(2, 1), Err(AllocError::NoSpace { tiles: 1 }));
    }

    #[test]
    fn free_enables_reuse() {
        let mut a = alloc();
        a.allocate(1, 32).unwrap();
        a.allocate(2, 32).unwrap();
        assert!(a.allocate(3, 8).is_err());
        a.free(1).unwrap();
        assert_eq!(a.free_tiles(), 32);
        let r = a.allocate(3, 32).unwrap().rect;
        assert_eq!(r.tiles(), 32);
    }

    #[test]
    fn eight_small_apps_fill_the_chip() {
        // The paper's scalability claim: 8 applications with independent
        // MCs on an 8x8 chip (one per 2x4 subNoC).
        let mut a = alloc();
        for app in 0..8 {
            let r = a.allocate(app, 8).unwrap().rect;
            assert_eq!(r.tiles(), 8);
            assert_eq!(a.mc_tiles(app).unwrap().len(), 1);
        }
        assert_eq!(a.free_tiles(), 0);
    }

    #[test]
    fn mc_tiles_follow_block_recipe() {
        let mut a = alloc();
        a.allocate(1, 32).unwrap();
        let mcs = a.mc_tiles(1).unwrap();
        assert_eq!(mcs.len(), 4, "4x8 region has 4 MC blocks");
    }

    #[test]
    fn fragmentation_recovers_after_churn() {
        let mut a = alloc();
        for app in 0..8 {
            a.allocate(app, 8).unwrap();
        }
        // Free every other app and allocate a big one.
        for app in [1u64, 3, 5, 7] {
            a.free(app).unwrap();
        }
        assert_eq!(a.free_tiles(), 32);
        // A 16-tile app must still fit somewhere (free blocks are 4x2
        // each; the allocator finds an aligned 4x4 if two free blocks
        // stack, else errors honestly).
        match a.allocate(100, 16) {
            Ok(r) => assert_eq!(r.rect.tiles(), 16),
            Err(AllocError::NoSpace { .. }) => {
                // Fragmented: acceptable, but smaller requests must work.
                a.allocate(101, 8).unwrap();
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn alloc_error_display() {
        assert!(!AllocError::NoSpace { tiles: 5 }.to_string().is_empty());
        assert!(!AllocError::Duplicate(1).to_string().is_empty());
        assert!(!AllocError::Unknown(2).to_string().is_empty());
    }
}

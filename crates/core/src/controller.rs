//! The per-subNoC control layer: gathers the Table-I state each epoch,
//! computes the Eq.-2 reward, asks the policy for a topology, and drives
//! the reconfiguration protocol (Sec. III).

use crate::layout::{AppRegion, ChipLayout};
use crate::mc_sharing::add_mc_bridge;
use crate::reconfig::{keeps_mesh, ReconfigTiming, RegionReconfig};
use adaptnoc_rl::dqn::{DqnAgent, TrainedPolicy, Transition};
use adaptnoc_rl::qtable::QTableAgent;
use adaptnoc_rl::state::{reward, Observation, StateScales};
use adaptnoc_sim::network::{Network, NetworkError};
use adaptnoc_sim::rng::Rng;
use adaptnoc_sim::spec::NetworkSpec;
use adaptnoc_topology::chip::build_chip_spec;
use adaptnoc_topology::plan::BuildError;
use adaptnoc_topology::regions::{RegionTopology, TopologyKind};

/// Per-region, per-epoch telemetry assembled by the workload harness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionTelemetry {
    /// The 12 Table-I attributes.
    pub obs: Observation,
    /// Average subNoC power over the epoch, watts.
    pub power_w: f64,
    /// Mean network latency of the region's packets, cycles.
    pub network_latency: f64,
    /// Mean queuing latency of the region's packets, cycles.
    pub queuing_latency: f64,
}

/// How a region picks its topology each epoch.
#[derive(Debug)]
pub enum TopologyPolicy {
    /// Statically fixed (baseline regions and Adapt-NoC-noRL).
    Fixed(TopologyKind),
    /// A deployed (offline-trained) DQN policy with ε-greedy exploration.
    Trained(TrainedPolicy),
    /// An online-learning DQN agent (used by the offline training harness).
    Learning(DqnAgent),
    /// A tabular Q-learning agent (ablation).
    QTable(QTableAgent),
}

impl TopologyPolicy {
    fn decide(&mut self, state: &[f64], rng: &mut Rng) -> TopologyKind {
        let idx = match self {
            TopologyPolicy::Fixed(k) => return *k,
            TopologyPolicy::Trained(p) => p.decide(state, rng),
            TopologyPolicy::Learning(a) => a.select_action(state, true),
            TopologyPolicy::QTable(a) => a.select_action(state, true),
        };
        TopologyKind::from_action_index(idx)
    }

    fn learn(&mut self, t: Transition) {
        match self {
            TopologyPolicy::Learning(a) => {
                a.observe(t);
                // One training iteration per epoch keeps the paper's
                // off-line cadence (the harness may train more densely).
                let _ = a.train_step();
            }
            TopologyPolicy::QTable(a) => {
                a.update(&t.state, t.action, t.reward, &t.next_state);
            }
            _ => {}
        }
    }

    fn is_rl(&self) -> bool {
        !matches!(self, TopologyPolicy::Fixed(_))
    }
}

/// One region's control state.
#[derive(Debug)]
pub struct RegionController {
    /// The application region.
    pub region: AppRegion,
    /// Topology currently configured (or being configured).
    pub current: TopologyKind,
    /// Topology the policy last asked for (reconfigurations are launched
    /// one region at a time; see [`AdaptController::tick`]).
    pub desired: TopologyKind,
    /// Decision policy.
    pub policy: TopologyPolicy,
    /// In-flight reconfiguration, if any.
    pub pending: Option<RegionReconfig>,
    /// Per-epoch topology selections (Fig. 14/15 breakdowns).
    pub histogram: [u64; 4],
    /// Completed reconfigurations.
    pub reconfig_count: u64,
    /// Cumulative reconfiguration latency cycles.
    pub reconfig_cycles: u64,
    prev: Option<(Vec<f64>, usize, f64)>,
}

/// An MC-sharing request: region `borrower` also uses the MC of region
/// `lender` (indices into the layout's regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McShare {
    /// Borrowing region index.
    pub borrower: usize,
    /// Lending region index.
    pub lender: usize,
}

/// Errors from the controller.
#[derive(Debug)]
pub enum ControlError {
    /// Building a chip spec failed.
    Build(BuildError),
    /// The network rejected a reconfiguration step.
    Network(NetworkError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Build(e) => write!(f, "spec construction failed: {e}"),
            ControlError::Network(e) => write!(f, "network reconfiguration failed: {e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<BuildError> for ControlError {
    fn from(e: BuildError) -> Self {
        ControlError::Build(e)
    }
}

impl From<NetworkError> for ControlError {
    fn from(e: NetworkError) -> Self {
        ControlError::Network(e)
    }
}

/// The Adapt-NoC controller: one RL controller per subNoC, implemented in
/// the MCs (Sec. III-A).
#[derive(Debug)]
pub struct AdaptController {
    /// The chip layout.
    pub layout: ChipLayout,
    /// Per-region controllers.
    pub regions: Vec<RegionController>,
    /// Requested MC shares.
    pub shares: Vec<McShare>,
    /// Protocol timing.
    pub timing: ReconfigTiming,
    /// State normalization scales.
    pub scales: StateScales,
    /// Reward normalization divisor: raw Eq.-2 rewards (watts x cycles)
    /// are divided by this to keep TD targets in a trainable range.
    pub reward_scale: f64,
    sim_cfg: adaptnoc_sim::config::SimConfig,
    rng: Rng,
}

impl AdaptController {
    /// Creates a controller with one policy per region (must match the
    /// layout's region count) starting on the mesh topology.
    ///
    /// # Panics
    ///
    /// Panics if the policy count disagrees with the layout.
    pub fn new(
        layout: ChipLayout,
        policies: Vec<TopologyPolicy>,
        sim_cfg: adaptnoc_sim::config::SimConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            layout.regions.len(),
            policies.len(),
            "one policy per region required"
        );
        let regions = layout
            .regions
            .iter()
            .zip(policies)
            .map(|(r, policy)| RegionController {
                region: r.clone(),
                current: TopologyKind::Mesh,
                desired: TopologyKind::Mesh,
                policy,
                pending: None,
                histogram: [0; 4],
                reconfig_count: 0,
                reconfig_cycles: 0,
                prev: None,
            })
            .collect();
        AdaptController {
            layout,
            regions,
            shares: Vec::new(),
            timing: ReconfigTiming::default(),
            scales: StateScales::default(),
            reward_scale: 50.0,
            sim_cfg,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Requests MC sharing between two regions (applied to every built
    /// spec; silently skipped when the current topologies leave no free
    /// boundary ports).
    pub fn share_mc(&mut self, share: McShare) {
        self.shares.push(share);
    }

    /// The region assignments as currently configured (with an optional
    /// override for one region).
    fn assignments(&self, override_region: Option<(usize, TopologyKind)>) -> Vec<RegionTopology> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, rc)| {
                let kind = match override_region {
                    Some((j, k)) if j == i => k,
                    _ => rc.current,
                };
                RegionTopology::new(rc.region.rect, kind)
                    .with_root(rc.region.mc)
                    .with_extra_roots(
                        rc.region
                            .mcs
                            .iter()
                            .copied()
                            .filter(|m| *m != rc.region.mc)
                            .collect(),
                    )
            })
            .collect()
    }

    /// Builds the full-chip spec for the given assignments, applying MC
    /// shares where physically possible.
    fn spec_for(&self, assignments: &[RegionTopology]) -> Result<NetworkSpec, BuildError> {
        let mut spec = build_chip_spec(self.layout.grid, assignments, &self.sim_cfg)?;
        for s in &self.shares {
            let borrower = self.regions[s.borrower].region.rect;
            let lender = self.regions[s.lender].region.rect;
            let mc = self.regions[s.lender].region.mc;
            // Best effort: torus neighbours may leave no free ports.
            let _ = add_mc_bridge(&mut spec, &self.layout.grid, borrower, lender, mc);
        }
        Ok(spec)
    }

    /// The initial (all-mesh) chip spec.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Build`] if construction fails.
    pub fn initial_spec(&self) -> Result<NetworkSpec, ControlError> {
        Ok(self.spec_for(&self.assignments(None))?)
    }

    /// Per-cycle hook: advances the in-flight reconfiguration and launches
    /// the next queued one.
    ///
    /// Reconfigurations are serialized — one region at a time — so every
    /// launch builds its target spec against the *settled* network state
    /// (launching two overlapping structural diffs concurrently could
    /// otherwise tear down a region mid-flight).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Network`] if a swap fails (protocol bug).
    pub fn tick(&mut self, net: &mut Network) -> Result<(), ControlError> {
        let mut busy = false;
        for rc in self.regions.iter_mut() {
            if let Some(p) = rc.pending.as_mut() {
                if p.tick(net, &self.layout.grid)? {
                    rc.reconfig_cycles += p.latency(net.now());
                    rc.reconfig_count += 1;
                    rc.pending = None;
                } else {
                    busy = true;
                }
            }
        }
        if !busy {
            self.maybe_launch(net)?;
        }
        Ok(())
    }

    /// Launches the next pending topology change, if any (one at a time).
    fn maybe_launch(&mut self, net: &mut Network) -> Result<(), ControlError> {
        let Some(i) = self
            .regions
            .iter()
            .position(|rc| rc.desired != rc.current && rc.pending.is_none())
        else {
            return Ok(());
        };
        let choice = self.regions[i].desired;
        let target = self.spec_for(&self.assignments(Some((i, choice))))?;
        let fast = keeps_mesh(self.regions[i].current) && keeps_mesh(choice);
        let transitional = if fast {
            // R_mesh for this region, everything else unchanged.
            let mesh_assign = self.assignments(Some((i, TopologyKind::Mesh)));
            Some(self.spec_for(&mesh_assign)?.tables)
        } else {
            None
        };
        let rect = self.regions[i].region.rect;
        self.regions[i].pending = Some(RegionReconfig::start(
            net,
            &self.layout.grid,
            rect,
            target,
            transitional,
            self.timing,
        ));
        self.regions[i].current = choice;
        Ok(())
    }

    /// Epoch boundary: feed telemetry, learn, decide, and launch
    /// reconfigurations. `telemetry` must have one entry per region.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] on spec-construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `telemetry.len()` disagrees with the region count.
    #[allow(clippy::needless_range_loop)]
    pub fn on_epoch(
        &mut self,
        net: &mut Network,
        telemetry: &[RegionTelemetry],
    ) -> Result<(), ControlError> {
        assert_eq!(telemetry.len(), self.regions.len(), "telemetry per region");
        for i in 0..self.regions.len() {
            let t = &telemetry[i];
            let mut obs = t.obs;
            obs.current_topology = self.regions[i].current.action_index() as f64;
            obs.columns = self.regions[i].region.rect.w as f64;
            obs.rows = self.regions[i].region.rect.h as f64;
            let state: Vec<f64> = obs.normalize(&self.scales).to_vec();

            // Learn from the previous epoch's decision.
            let r = reward(t.power_w, t.network_latency, t.queuing_latency) / self.reward_scale;
            if let Some((ps, pa, _)) = self.regions[i].prev.take() {
                self.regions[i].policy.learn(Transition {
                    state: ps,
                    action: pa,
                    reward: r,
                    next_state: state.clone(),
                });
            }

            // Decide.
            if self.regions[i].policy.is_rl() {
                net.count_rl_inference();
            }
            let choice = self.regions[i].policy.decide(&state, &mut self.rng);
            self.regions[i].histogram[choice.action_index()] += 1;
            self.regions[i].prev = Some((state, choice.action_index(), r));

            // Queue the change; launches are serialized in `tick`.
            self.regions[i].desired = choice;

            // Reward components and the decision, as telemetry (one gauge
            // set per region; see docs/OBSERVABILITY.md).
            if let Some(reg) = net.telemetry_mut() {
                let region = i.to_string();
                let labels: &[(&str, &str)] = &[("region", &region)];
                let g = reg.gauge(
                    "adaptnoc_rl_reward_power_watts",
                    "Average subNoC power fed into the Eq.-2 reward this epoch.",
                    "watts",
                    labels,
                );
                reg.set(g, t.power_w);
                let g = reg.gauge(
                    "adaptnoc_rl_reward_t_network_cycles",
                    "Mean network latency fed into the Eq.-2 reward this epoch.",
                    "cycles",
                    labels,
                );
                reg.set(g, t.network_latency);
                let g = reg.gauge(
                    "adaptnoc_rl_reward_t_queuing_cycles",
                    "Mean queuing latency fed into the Eq.-2 reward this epoch.",
                    "cycles",
                    labels,
                );
                reg.set(g, t.queuing_latency);
                let g = reg.gauge(
                    "adaptnoc_rl_reward_scaled",
                    "Scaled Eq.-2 reward (-power x (T_network + T_queuing) / scale).",
                    "reward",
                    labels,
                );
                reg.set(g, r);
                let c = reg.counter(
                    "adaptnoc_rl_decisions_total",
                    "Topology decisions taken, by region and chosen topology.",
                    "decisions",
                    &[("region", &region), ("topology", choice.name())],
                );
                reg.inc(c);
            }
        }
        self.tick(net)?;
        Ok(())
    }

    /// Selection fractions per topology for a region (Fig. 14/15).
    pub fn selection_breakdown(&self, region: usize) -> [f64; 4] {
        let h = &self.regions[region].histogram;
        let total: u64 = h.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        [
            h[0] as f64 / total as f64,
            h[1] as f64 / total as f64,
            h[2] as f64 / total as f64,
            h[3] as f64 / total as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChipLayout;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_topology::geom::Rect;

    fn single_region_controller(policy: TopologyPolicy) -> (AdaptController, Network) {
        let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let ctl = AdaptController::new(layout, vec![policy], SimConfig::adapt_noc(), 1);
        let spec = ctl.initial_spec().unwrap();
        let net = Network::new(spec, SimConfig::adapt_noc()).unwrap();
        (ctl, net)
    }

    fn telemetry() -> RegionTelemetry {
        RegionTelemetry {
            obs: Observation::default(),
            power_w: 0.5,
            network_latency: 20.0,
            queuing_latency: 5.0,
        }
    }

    #[test]
    fn fixed_policy_reconfigures_once() {
        let (mut ctl, mut net) =
            single_region_controller(TopologyPolicy::Fixed(TopologyKind::Torus));
        ctl.on_epoch(&mut net, &[telemetry()]).unwrap();
        assert!(ctl.regions[0].pending.is_some());
        for _ in 0..2000 {
            net.step();
            ctl.tick(&mut net).unwrap();
        }
        assert!(ctl.regions[0].pending.is_none());
        assert_eq!(ctl.regions[0].reconfig_count, 1);
        assert_eq!(ctl.regions[0].current, TopologyKind::Torus);
        assert!(net.spec().channels.iter().any(|c| c.dateline));
        // Second epoch: same choice, no new reconfig.
        ctl.on_epoch(&mut net, &[telemetry()]).unwrap();
        assert!(ctl.regions[0].pending.is_none());
        assert_eq!(ctl.selection_breakdown(0)[2], 1.0);
    }

    #[test]
    fn fixed_cmesh_takes_slow_path() {
        let (mut ctl, mut net) =
            single_region_controller(TopologyPolicy::Fixed(TopologyKind::Cmesh));
        ctl.on_epoch(&mut net, &[telemetry()]).unwrap();
        for _ in 0..5000 {
            net.step();
            ctl.tick(&mut net).unwrap();
        }
        assert_eq!(ctl.regions[0].current, TopologyKind::Cmesh);
        assert_eq!(net.spec().active_routers(), 64 - 12);
    }

    #[test]
    fn learning_policy_explores_topologies() {
        use adaptnoc_rl::dqn::{DqnAgent, DqnConfig};
        let agent = DqnAgent::new(
            DqnConfig {
                epsilon: 0.5, // explore aggressively for the test
                ..DqnConfig::default()
            },
            3,
        );
        let (mut ctl, mut net) = single_region_controller(TopologyPolicy::Learning(agent));
        for _ in 0..30 {
            ctl.on_epoch(&mut net, &[telemetry()]).unwrap();
            for _ in 0..600 {
                net.step();
                ctl.tick(&mut net).unwrap();
            }
        }
        let visited: usize = ctl.regions[0].histogram.iter().filter(|&&h| h > 0).count();
        assert!(visited >= 2, "exploration should visit several topologies");
        assert!(net.totals().events.rl_inferences >= 30);
    }

    #[test]
    fn selection_breakdown_sums_to_one() {
        let (mut ctl, mut net) =
            single_region_controller(TopologyPolicy::Fixed(TopologyKind::Tree));
        for _ in 0..5 {
            ctl.on_epoch(&mut net, &[telemetry()]).unwrap();
            for _ in 0..1500 {
                net.step();
                ctl.tick(&mut net).unwrap();
            }
        }
        let b = ctl.selection_breakdown(0);
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(b[3], 1.0);
    }

    #[test]
    fn multi_region_controller_with_mc_share() {
        let layout = ChipLayout::paper_mixed();
        let policies = vec![
            TopologyPolicy::Fixed(TopologyKind::Cmesh),
            TopologyPolicy::Fixed(TopologyKind::Tree),
            TopologyPolicy::Fixed(TopologyKind::Torus),
        ];
        let mut ctl = AdaptController::new(layout, policies, SimConfig::adapt_noc(), 9);
        ctl.share_mc(McShare {
            borrower: 0,
            lender: 1,
        });
        let spec = ctl.initial_spec().unwrap();
        let mut net = Network::new(spec, SimConfig::adapt_noc()).unwrap();
        let t = [telemetry(), telemetry(), telemetry()];
        ctl.on_epoch(&mut net, &t).unwrap();
        for _ in 0..8000 {
            net.step();
            ctl.tick(&mut net).unwrap();
        }
        assert_eq!(ctl.regions[0].current, TopologyKind::Cmesh);
        assert_eq!(ctl.regions[1].current, TopologyKind::Tree);
        assert_eq!(ctl.regions[2].current, TopologyKind::Torus);
        for rc in &ctl.regions {
            assert!(rc.pending.is_none(), "all reconfigs should complete");
        }
    }
}

//! The seven evaluated NoC designs (Sec. IV-A).
//!
//! | Design | Fabric | Runtime policy |
//! |---|---|---|
//! | Baseline | 8x8 mesh, 3 VCs/vnet | — |
//! | OSCAR | 8x8 mesh, 3 VCs/vnet | dynamic VC allocation |
//! | Shortcut | mesh + express links | — |
//! | FTBY | flattened butterfly, 4 VCs/vnet, `T_r`=3 | — |
//! | FTBY_PG | flattened butterfly | runtime power gating |
//! | Adapt-NoC-noRL | subNoCs, 2 VCs/vnet | statically chosen best topology |
//! | Adapt-NoC | subNoCs, 2 VCs/vnet | RL topology selection |

use crate::controller::{AdaptController, ControlError, RegionTelemetry, TopologyPolicy};
use crate::layout::ChipLayout;
use crate::policies::{OscarPolicy, PowerGatePolicy};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::stats::EpochReport;
use adaptnoc_topology::chip::mesh_chip;
use adaptnoc_topology::ftby::ftby_chip;
use adaptnoc_topology::shortcut::{choose_shortcut_links, shortcut_chip, TrafficWeight};

/// The evaluated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Mesh baseline.
    Baseline,
    /// OSCAR dynamic VC allocation on the mesh.
    Oscar,
    /// Mesh with application-specific long-range express links.
    Shortcut,
    /// Flattened butterfly.
    Ftby,
    /// Flattened butterfly with conventional runtime power gating.
    FtbyPg,
    /// Adapt-NoC with statically selected (oracle) topologies.
    AdaptNocNoRl,
    /// Adapt-NoC with the RL control policy.
    AdaptNoc,
}

impl DesignKind {
    /// All designs in the paper's presentation order.
    pub const ALL: [DesignKind; 7] = [
        DesignKind::Baseline,
        DesignKind::Oscar,
        DesignKind::Shortcut,
        DesignKind::Ftby,
        DesignKind::FtbyPg,
        DesignKind::AdaptNocNoRl,
        DesignKind::AdaptNoc,
    ];

    /// Display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            DesignKind::Baseline => "baseline",
            DesignKind::Oscar => "oscar",
            DesignKind::Shortcut => "shortcut",
            DesignKind::Ftby => "ftby",
            DesignKind::FtbyPg => "ftby_pg",
            DesignKind::AdaptNocNoRl => "adapt-noc-norl",
            DesignKind::AdaptNoc => "adapt-noc",
        }
    }

    /// The simulator configuration keeping buffer area equal (Sec. IV-A).
    pub fn sim_config(self) -> SimConfig {
        match self {
            DesignKind::Baseline | DesignKind::Oscar | DesignKind::Shortcut => {
                SimConfig::baseline()
            }
            DesignKind::Ftby | DesignKind::FtbyPg => SimConfig::flattened_butterfly(),
            DesignKind::AdaptNocNoRl | DesignKind::AdaptNoc => SimConfig::adapt_noc(),
        }
    }

    /// Whether this design reconfigures subNoCs.
    pub fn is_adaptive(self) -> bool {
        matches!(self, DesignKind::AdaptNocNoRl | DesignKind::AdaptNoc)
    }
}

impl std::fmt::Display for DesignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime state of a built design.
#[derive(Debug)]
pub enum DesignRuntime {
    /// No runtime policy.
    Static,
    /// OSCAR VC re-partitioning.
    Oscar(OscarPolicy),
    /// FTBY_PG power gating.
    PowerGate(PowerGatePolicy),
    /// Adapt-NoC controller (fixed or RL policies).
    Adapt(Box<AdaptController>),
}

/// A built design: the live network plus its runtime policy.
#[derive(Debug)]
pub struct Design {
    /// Which design this is.
    pub kind: DesignKind,
    /// The chip layout it runs on.
    pub layout: ChipLayout,
    /// The live network.
    pub net: Network,
    /// Runtime policy state.
    pub runtime: DesignRuntime,
}

impl Design {
    /// Builds a design for a chip layout. Adaptive designs take one
    /// [`TopologyPolicy`] per region; the Shortcut design uses
    /// `traffic_hint` to place its express links.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] on construction failures.
    ///
    /// # Panics
    ///
    /// Panics if an adaptive design receives the wrong number of policies.
    pub fn build(
        kind: DesignKind,
        layout: ChipLayout,
        traffic_hint: &[TrafficWeight],
        policies: Vec<TopologyPolicy>,
        seed: u64,
    ) -> Result<Design, ControlError> {
        let cfg = kind.sim_config();
        let grid = layout.grid;
        let (net, runtime) = match kind {
            DesignKind::Baseline => {
                let spec = mesh_chip(grid, &cfg)?;
                (Network::new(spec, cfg)?, DesignRuntime::Static)
            }
            DesignKind::Oscar => {
                let spec = mesh_chip(grid, &cfg)?;
                let policy = OscarPolicy::new(&cfg);
                (Network::new(spec, cfg)?, DesignRuntime::Oscar(policy))
            }
            DesignKind::Shortcut => {
                let links = choose_shortcut_links(&grid, traffic_hint, 6);
                let spec = shortcut_chip(grid, &links, &cfg)?;
                (Network::new(spec, cfg)?, DesignRuntime::Static)
            }
            DesignKind::Ftby => {
                let spec = ftby_chip(grid, &cfg)?;
                (Network::new(spec, cfg)?, DesignRuntime::Static)
            }
            DesignKind::FtbyPg => {
                let spec = ftby_chip(grid, &cfg)?;
                let pg = PowerGatePolicy::new(spec.routers.len());
                (Network::new(spec, cfg)?, DesignRuntime::PowerGate(pg))
            }
            DesignKind::AdaptNocNoRl | DesignKind::AdaptNoc => {
                let ctl = AdaptController::new(layout.clone(), policies, cfg.clone(), seed);
                let spec = ctl.initial_spec()?;
                (
                    Network::new(spec, cfg)?,
                    DesignRuntime::Adapt(Box::new(ctl)),
                )
            }
        };
        Ok(Design {
            kind,
            layout,
            net,
            runtime,
        })
    }

    /// Per-cycle hook (cheap): advances reconfigurations and power gating.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] if a reconfiguration step fails.
    pub fn tick(&mut self) -> Result<(), ControlError> {
        match &mut self.runtime {
            DesignRuntime::Static | DesignRuntime::Oscar(_) => Ok(()),
            DesignRuntime::PowerGate(pg) => {
                pg.tick(&mut self.net);
                Ok(())
            }
            DesignRuntime::Adapt(ctl) => ctl.tick(&mut self.net),
        }
    }

    /// Epoch boundary hook.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] on reconfiguration construction failures.
    pub fn on_epoch(
        &mut self,
        report: &EpochReport,
        telemetry: &[RegionTelemetry],
    ) -> Result<(), ControlError> {
        match &mut self.runtime {
            DesignRuntime::Static | DesignRuntime::PowerGate(_) => Ok(()),
            DesignRuntime::Oscar(p) => {
                p.on_epoch(&mut self.net, report);
                Ok(())
            }
            DesignRuntime::Adapt(ctl) => ctl.on_epoch(&mut self.net, telemetry),
        }
    }

    /// The Adapt controller, if this design has one.
    pub fn controller(&self) -> Option<&AdaptController> {
        match &self.runtime {
            DesignRuntime::Adapt(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable access to the Adapt controller, if any.
    pub fn controller_mut(&mut self) -> Option<&mut AdaptController> {
        match &mut self.runtime {
            DesignRuntime::Adapt(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::prelude::Packet;
    use adaptnoc_topology::geom::{Coord, Rect};
    use adaptnoc_topology::regions::TopologyKind;

    fn layout() -> ChipLayout {
        ChipLayout::single(Rect::new(0, 0, 4, 4), false)
    }

    fn policies_for(kind: DesignKind) -> Vec<TopologyPolicy> {
        if kind.is_adaptive() {
            vec![TopologyPolicy::Fixed(TopologyKind::Cmesh)]
        } else {
            vec![]
        }
    }

    #[test]
    fn all_designs_build_and_carry_traffic() {
        for kind in DesignKind::ALL {
            let layout = layout();
            let grid = layout.grid;
            let mut d = Design::build(kind, layout, &[], policies_for(kind), 1).unwrap();
            let a = grid.node(Coord::new(0, 0));
            let b = grid.node(Coord::new(3, 3));
            let t = [RegionTelemetry::default()];
            d.on_epoch(&EpochReport::default(), &t).unwrap();
            d.net.inject(Packet::request(1, a, b, 0)).unwrap();
            d.net.inject(Packet::reply(2, b, a, 0)).unwrap();
            for _ in 0..4000 {
                d.net.step();
                d.tick().unwrap();
            }
            assert_eq!(d.net.drain_delivered().len(), 2, "{kind} failed to deliver");
            assert_eq!(d.net.in_flight(), 0, "{kind} left traffic");
        }
    }

    #[test]
    fn design_configs_match_paper() {
        assert_eq!(DesignKind::Baseline.sim_config().vcs_per_vnet, 3);
        assert_eq!(DesignKind::AdaptNoc.sim_config().vcs_per_vnet, 2);
        assert_eq!(DesignKind::Ftby.sim_config().vcs_per_vnet, 4);
        assert_eq!(DesignKind::Ftby.sim_config().router_latency, 3);
        assert_eq!(DesignKind::Baseline.sim_config().router_latency, 2);
        assert!(DesignKind::AdaptNoc.sim_config().injection_bypass);
        assert!(!DesignKind::Baseline.sim_config().injection_bypass);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = DesignKind::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn adaptive_design_reconfigures() {
        let layout = layout();
        let mut d = Design::build(
            DesignKind::AdaptNocNoRl,
            layout,
            &[],
            vec![TopologyPolicy::Fixed(TopologyKind::Torus)],
            1,
        )
        .unwrap();
        d.on_epoch(&EpochReport::default(), &[RegionTelemetry::default()])
            .unwrap();
        for _ in 0..2000 {
            d.net.step();
            d.tick().unwrap();
        }
        assert!(d.net.spec().channels.iter().any(|c| c.dateline));
        assert_eq!(d.controller().unwrap().regions[0].reconfig_count, 1);
    }

    #[test]
    fn ftby_pg_gates_routers_over_time() {
        let layout = layout();
        let mut d = Design::build(DesignKind::FtbyPg, layout, &[], vec![], 1).unwrap();
        for _ in 0..500 {
            d.net.step();
            d.tick().unwrap();
        }
        let e = d.net.take_epoch();
        assert!(
            e.static_cycles.router_off_cycles > 0,
            "idle FTBY_PG routers must sleep"
        );
    }
}

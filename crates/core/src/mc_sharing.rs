//! Memory-controller sharing across adjacent subNoCs (Sec. II-C2).
//!
//! A memory-intensive application can borrow bandwidth from the MC of an
//! adjacent subNoC: one pair of peripheral routers is bridged with the
//! otherwise-unused inter-region mesh links, and routing entries are added
//! so the borrowing region reaches the remote MC (requests) and the remote
//! MC's replies find their way back. Only **one** router of a subNoC may
//! connect to an external MC — the paper's precondition for keeping the
//! channel-dependency graph acyclic.

use adaptnoc_sim::ids::{NodeId, Vnet};
use adaptnoc_sim::spec::{mesh_channel, NetworkSpec, PortRef};
use adaptnoc_topology::geom::{Coord, Grid, Rect};
use adaptnoc_topology::plan::BuildError;

/// A configured MC-sharing bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McBridge {
    /// Peripheral router tile inside the borrowing region.
    pub local: Coord,
    /// Peripheral router tile inside the lending region.
    pub remote: Coord,
    /// The remote memory controller being shared.
    pub mc: NodeId,
}

/// Adds an MC-sharing bridge to `spec`, letting every node of
/// `borrower` reach `mc` (which lives in `lender`).
///
/// # Errors
///
/// Returns [`BuildError::Region`] if the regions are not adjacent or no
/// boundary router pair with free facing ports exists.
pub fn add_mc_bridge(
    spec: &mut NetworkSpec,
    grid: &Grid,
    borrower: Rect,
    lender: Rect,
    mc: NodeId,
) -> Result<McBridge, BuildError> {
    if !borrower.adjacent(&lender) {
        return Err(BuildError::Region(format!(
            "regions {borrower} and {lender} are not adjacent"
        )));
    }
    let mc_coord = grid.node_coord(mc);
    if !lender.contains(mc_coord) {
        return Err(BuildError::Region(format!(
            "MC {mc} is not inside the lending region {lender}"
        )));
    }

    // Candidate boundary pairs: adjacent tiles (a in borrower, b in lender)
    // whose facing direction ports are free and whose routers are active.
    let mut candidates: Vec<(Coord, Coord)> = Vec::new();
    for a in borrower.iter() {
        for dir in adaptnoc_sim::ids::Direction::ALL {
            if let Some(b) = grid.neighbor(a, dir) {
                if lender.contains(b) {
                    candidates.push((a, b));
                }
            }
        }
    }
    let used_src: std::collections::HashSet<PortRef> =
        spec.channels.iter().map(|c| c.src).collect();
    let used_dst: std::collections::HashSet<PortRef> =
        spec.channels.iter().map(|c| c.dst).collect();

    candidates.sort_by_key(|(a, b)| a.manhattan(mc_coord) + b.manhattan(mc_coord));
    // The adaptable router's muxes let any direction port drive the bridge
    // wire, so any free out/in port pair on both sides works.
    let free_out = |r: adaptnoc_sim::ids::RouterId| -> Option<adaptnoc_sim::ids::PortId> {
        (0..4u8)
            .map(adaptnoc_sim::ids::PortId)
            .find(|&p| !used_src.contains(&PortRef::new(r, p)))
    };
    let free_in = |r: adaptnoc_sim::ids::RouterId| -> Option<adaptnoc_sim::ids::PortId> {
        (0..4u8)
            .map(adaptnoc_sim::ids::PortId)
            .find(|&p| !used_dst.contains(&PortRef::new(r, p)))
    };
    let pick = candidates.into_iter().find_map(|(a, b)| {
        let ra = grid.router(a);
        let rb = grid.router(b);
        if !spec.routers[ra.index()].active || !spec.routers[rb.index()].active {
            return None;
        }
        // Forward (borrower -> lender) and reverse ports must all be free;
        // the forward dst and reverse src may share a port index with other
        // roles only if unused in that role.
        let a_out = free_out(ra)?;
        let b_in = free_in(rb)?;
        let b_out = free_out(rb)?;
        let a_in = free_in(ra)?;
        Some((a, b, a_out, b_in, b_out, a_in))
    });
    let Some((a, b, a_out, b_in, b_out, a_in)) = pick else {
        return Err(BuildError::Region(format!(
            "no free boundary ports between {borrower} and {lender}"
        )));
    };

    let ra = grid.router(a);
    let rb = grid.router(b);
    let _ = a.direction_to(b).expect("adjacent tiles");
    spec.add_channel(mesh_channel(
        PortRef::new(ra, a_out),
        PortRef::new(rb, b_in),
    ));
    spec.add_channel(mesh_channel(
        PortRef::new(rb, b_out),
        PortRef::new(ra, a_in),
    ));

    // Request routes: borrower routers reach `mc` by routing towards the
    // gateway tile `a`, then across the bridge; inside the lender the
    // existing routes to `mc` take over.
    let gateway_node = grid.node(a);
    let vnets = spec.tables.vnets() as u8;
    let borrower_routers: Vec<_> = borrower
        .iter()
        .map(|c| grid.router(c))
        .filter(|r| spec.routers[r.index()].active)
        .collect();
    for v in 0..vnets {
        for &r in &borrower_routers {
            if r == ra {
                spec.tables.set(Vnet(v), r, mc, a_out);
            } else if let Some(p) = spec.tables.lookup(Vnet(v), r, gateway_node) {
                spec.tables.set(Vnet(v), r, mc, p);
            }
        }
        // Bridge entry into the lender region.
        if let Some(p) = spec.tables.lookup(Vnet(v), rb, mc) {
            spec.tables.set(Vnet(v), rb, mc, p);
        }
    }

    // Reply routes: lender routers reach every borrower node by routing
    // towards the gateway tile `b`, then across the bridge back.
    let gateway_b_node = grid.node(b);
    let lender_routers: Vec<_> = lender
        .iter()
        .map(|c| grid.router(c))
        .filter(|r| spec.routers[r.index()].active)
        .collect();
    let borrower_nodes: Vec<NodeId> = borrower.iter().map(|c| grid.node(c)).collect();
    for v in 0..vnets {
        for &r in &lender_routers {
            for &d in &borrower_nodes {
                if r == rb {
                    spec.tables.set(Vnet(v), r, d, b_out);
                } else if let Some(p) = spec.tables.lookup(Vnet(v), r, gateway_b_node) {
                    spec.tables.set(Vnet(v), r, d, p);
                }
            }
        }
    }

    Ok(McBridge {
        local: a,
        remote: b,
        mc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_sim::prelude::{Network, Packet};
    use adaptnoc_topology::prelude::*;

    fn two_region_chip(
        k1: TopologyKind,
        k2: TopologyKind,
    ) -> (NetworkSpec, Grid, Rect, Rect, NodeId) {
        let grid = Grid::paper();
        let r1 = Rect::new(0, 0, 4, 8);
        let r2 = Rect::new(4, 0, 4, 8);
        let mc = grid.node(Coord::new(4, 0)); // lender's MC at its origin
        let cfg = SimConfig::adapt_noc();
        let mut spec = build_chip_spec(
            grid,
            &[
                RegionTopology::new(r1, k1),
                RegionTopology::new(r2, k2).with_root(mc),
            ],
            &cfg,
        )
        .unwrap();
        let bridge = add_mc_bridge(&mut spec, &grid, r1, r2, mc).unwrap();
        assert_eq!(bridge.mc, mc);
        (spec, grid, r1, r2, mc)
    }

    #[test]
    fn bridge_enables_remote_mc_round_trip() {
        let (spec, grid, r1, _r2, mc) = two_region_chip(TopologyKind::Mesh, TopologyKind::Mesh);
        spec.validate().unwrap();
        let mut net = Network::new(spec, SimConfig::adapt_noc()).unwrap();
        // Every borrower node sends a request to the remote MC; the MC
        // replies to each.
        let nodes: Vec<NodeId> = r1.iter().map(|c| grid.node(c)).collect();
        let mut id = 0;
        for &n in &nodes {
            id += 1;
            net.inject(Packet::request(id, n, mc, 0)).unwrap();
            id += 1;
            net.inject(Packet::reply(id, mc, n, 0)).unwrap();
        }
        net.run(4000);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.drain_delivered().len(), id as usize);
        assert_eq!(net.unroutable_events(), 0);
    }

    #[test]
    fn bridge_routes_are_deadlock_free() {
        let (spec, grid, r1, r2, mc) = two_region_chip(TopologyKind::Tree, TopologyKind::Mesh);
        // Pairs: intra-region all-pairs plus the cross-region MC flows.
        let mut pairs = Vec::new();
        for rect in [r1, r2] {
            let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
            pairs.extend(all_pairs(&nodes));
        }
        for c in r1.iter() {
            let n = grid.node(c);
            pairs.push((n, mc));
            pairs.push((mc, n));
        }
        check_routes_and_deadlock(&spec, &pairs).unwrap();
    }

    #[test]
    fn non_adjacent_regions_rejected() {
        let grid = Grid::paper();
        let cfg = SimConfig::adapt_noc();
        let r1 = Rect::new(0, 0, 2, 2);
        let r2 = Rect::new(4, 4, 2, 2);
        let mc = grid.node(Coord::new(4, 4));
        let mut spec = build_chip_spec(
            grid,
            &[
                RegionTopology::new(r1, TopologyKind::Mesh),
                RegionTopology::new(r2, TopologyKind::Mesh),
            ],
            &cfg,
        )
        .unwrap();
        assert!(matches!(
            add_mc_bridge(&mut spec, &grid, r1, r2, mc),
            Err(BuildError::Region(_))
        ));
    }

    #[test]
    fn mc_outside_lender_rejected() {
        let grid = Grid::paper();
        let cfg = SimConfig::adapt_noc();
        let r1 = Rect::new(0, 0, 4, 8);
        let r2 = Rect::new(4, 0, 4, 8);
        let mut spec = build_chip_spec(
            grid,
            &[
                RegionTopology::new(r1, TopologyKind::Mesh),
                RegionTopology::new(r2, TopologyKind::Mesh),
            ],
            &cfg,
        )
        .unwrap();
        let not_in_lender = grid.node(Coord::new(0, 0));
        assert!(matches!(
            add_mc_bridge(&mut spec, &grid, r1, r2, not_in_lender),
            Err(BuildError::Region(_))
        ));
    }

    #[test]
    fn torus_region_cannot_bridge_gracefully() {
        // A torus subNoC consumes every peripheral port with its wrap
        // segments; the controller must treat MC sharing as unavailable.
        let grid = Grid::paper();
        let cfg = SimConfig::adapt_noc();
        let r1 = Rect::new(0, 0, 4, 8);
        let r2 = Rect::new(4, 0, 4, 8);
        let mc = grid.node(Coord::new(4, 0));
        let mut spec = build_chip_spec(
            grid,
            &[
                RegionTopology::new(r1, TopologyKind::Torus),
                RegionTopology::new(r2, TopologyKind::Mesh).with_root(mc),
            ],
            &cfg,
        )
        .unwrap();
        assert!(matches!(
            add_mc_bridge(&mut spec, &grid, r1, r2, mc),
            Err(BuildError::Region(_))
        ));
    }

    #[test]
    fn bridge_works_with_cmesh_lender() {
        // The lender's peripheral routers may be gated (cmesh); the bridge
        // must land on active routers.
        let (spec, grid, r1, _r2, mc) = two_region_chip(TopologyKind::Mesh, TopologyKind::Cmesh);
        spec.validate().unwrap();
        let mut net = Network::new(spec, SimConfig::adapt_noc()).unwrap();
        let n = grid.node(Coord::new(3, 3));
        net.inject(Packet::request(1, n, mc, 0)).unwrap();
        net.run(500);
        assert_eq!(net.drain_delivered().len(), 1);
        let _ = r1;
    }
}

//! Runtime policies of the baseline designs: OSCAR's dynamic VC allocation
//! and conventional runtime power gating (FTBY_PG).

use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{RouterId, Vnet};
use adaptnoc_sim::network::Network;
use adaptnoc_sim::stats::EpochReport;

/// OSCAR's dynamic VC allocation (Zhan et al., MICRO'16; paper baseline 2):
/// each epoch, the VC budget is re-partitioned between the request and
/// reply virtual networks according to their observed traffic shares. The
/// under-used vnet is restricted to fewer VCs — reducing inter-class
/// interference at some cost in peak utilization (the paper observes a
/// small queuing-latency increase).
#[derive(Debug, Clone)]
pub struct OscarPolicy {
    vcs_per_vnet: u8,
    /// Minimum VCs any vnet keeps.
    pub min_vcs: u8,
    last_masks: (u8, u8),
}

impl OscarPolicy {
    /// Creates the policy for a simulator configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let all = (1u8 << cfg.vcs_per_vnet) - 1;
        OscarPolicy {
            vcs_per_vnet: cfg.vcs_per_vnet,
            min_vcs: 1,
            last_masks: (all, all),
        }
    }

    /// The most recent (request, reply) masks.
    pub fn masks(&self) -> (u8, u8) {
        self.last_masks
    }

    /// Re-partitions VCs from the epoch's traffic mix and applies the masks
    /// to every active router.
    pub fn on_epoch(&mut self, net: &mut Network, report: &EpochReport) {
        // Weight replies by their flit count: VC pressure tracks flits,
        // not packets.
        let requests = (report.stats.by_kind[0] + report.stats.by_kind[2]) as f64;
        let replies =
            report.stats.by_kind[1] as f64 * adaptnoc_sim::config::DATA_PACKET_FLITS as f64;
        let total = requests + replies;
        let all = (1u8 << self.vcs_per_vnet) - 1;
        let mask_of = |n: u8| (1u8 << n) - 1;
        // Only repartition on clearly skewed traffic: the light class
        // donates one VC (modeling OSCAR's reallocation of its share of
        // the pool to the heavy class; our vnets cannot grow beyond their
        // physical VCs, so the donation shows up as the light class
        // shrinking). Balanced traffic keeps the full allocation.
        let (req_mask, rep_mask) = if total < 1.0 {
            (all, all)
        } else {
            let req_share = requests / total;
            let reduced = mask_of((self.vcs_per_vnet - 1).max(self.min_vcs));
            if req_share > 0.7 {
                (all, reduced)
            } else if req_share < 0.3 {
                (reduced, all)
            } else {
                (all, all)
            }
        };
        self.last_masks = (req_mask, rep_mask);
        let routers = net.spec().routers.len();
        for r in 0..routers {
            if !net.spec().routers[r].active {
                continue;
            }
            net.set_vc_mask(RouterId(r as u16), Vnet::REQUEST, req_mask);
            net.set_vc_mask(RouterId(r as u16), Vnet::REPLY, rep_mask);
        }
    }
}

/// Conventional runtime power gating (paper baseline 5, FTBY_PG): routers
/// idle for a full check window are put to sleep; any arrival pays the
/// wake-up latency (Hu et al. \\[43\\]). The paper's observation — substantial
/// static savings but "substantial latency to resume router's activity" —
/// falls out of the wake penalty.
#[derive(Debug, Clone)]
pub struct PowerGatePolicy {
    /// Cycles between idle checks.
    pub check_interval: u64,
    idle_streak: Vec<u32>,
    /// Idle checks a router must pass before sleeping.
    pub idle_threshold: u32,
}

impl PowerGatePolicy {
    /// Creates the policy with a 64-cycle check window and a 2-window
    /// idle threshold.
    pub fn new(routers: usize) -> Self {
        PowerGatePolicy {
            check_interval: 32,
            idle_streak: vec![0; routers],
            idle_threshold: 1,
        }
    }

    /// Per-cycle hook: on window boundaries, sleep routers that stayed
    /// idle. Returns how many routers were put to sleep this call.
    pub fn tick(&mut self, net: &mut Network) -> usize {
        if !net.now().is_multiple_of(self.check_interval) {
            return 0;
        }
        let mut slept = 0;
        let n = net.spec().routers.len();
        for r in 0..n {
            let id = RouterId(r as u16);
            if !net.spec().routers[r].active || net.is_sleeping(id) {
                continue;
            }
            if net.router_flits(id) == 0 {
                self.idle_streak[r] += 1;
                if self.idle_streak[r] >= self.idle_threshold && net.try_sleep_router(id) {
                    slept += 1;
                    self.idle_streak[r] = 0;
                }
            } else {
                self.idle_streak[r] = 0;
            }
        }
        slept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::prelude::*;
    use adaptnoc_topology::prelude::*;

    fn mesh_net(cfg: SimConfig) -> Network {
        let spec = mesh_chip(Grid::new(4, 4), &cfg).unwrap();
        Network::new(spec, cfg).unwrap()
    }

    #[test]
    fn oscar_starts_with_all_vcs() {
        let cfg = SimConfig::baseline();
        let p = OscarPolicy::new(&cfg);
        assert_eq!(p.masks(), (0b111, 0b111));
    }

    #[test]
    fn oscar_shifts_vcs_toward_heavy_vnet() {
        let cfg = SimConfig::baseline();
        let mut net = mesh_net(cfg.clone());
        let mut p = OscarPolicy::new(&cfg);
        // Reply-dominated epoch.
        let mut report = EpochReport::default();
        report.stats.by_kind = [100, 5000, 50];
        p.on_epoch(&mut net, &report);
        let (req, rep) = p.masks();
        assert!(rep.count_ones() > req.count_ones());
        assert!(req.count_ones() >= 1);

        // Request-dominated epoch flips it.
        report.stats.by_kind = [5000, 100, 500];
        p.on_epoch(&mut net, &report);
        let (req, rep) = p.masks();
        assert!(req.count_ones() > rep.count_ones());
    }

    #[test]
    fn oscar_keeps_traffic_flowing() {
        let cfg = SimConfig::baseline();
        let mut net = mesh_net(cfg.clone());
        let mut p = OscarPolicy::new(&cfg);
        let mut report = EpochReport::default();
        report.stats.by_kind = [10_000, 10, 10];
        p.on_epoch(&mut net, &report);
        let grid = Grid::new(4, 4);
        let mut id = 0;
        for c in grid.iter() {
            id += 1;
            net.inject(Packet::reply(
                id,
                grid.node(c),
                grid.node(Coord::new(0, 0)),
                0,
            ))
            .ok();
        }
        net.run(3000);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn power_gate_sleeps_idle_routers() {
        let cfg = SimConfig::baseline();
        let mut net = mesh_net(cfg);
        let mut pg = PowerGatePolicy::new(16);
        let mut slept_total = 0;
        for _ in 0..400 {
            net.step();
            slept_total += pg.tick(&mut net);
        }
        assert!(slept_total >= 16, "all idle routers should sleep");
        // Static accounting reflects the gating.
        let e = net.take_epoch();
        assert!(e.static_cycles.router_off_cycles > 0);
    }

    #[test]
    fn power_gate_wakes_for_traffic_with_penalty() {
        let cfg = SimConfig::baseline();
        let grid = Grid::new(4, 4);
        let mut net = mesh_net(cfg.clone());
        let mut pg = PowerGatePolicy::new(16);
        // Let everything fall asleep.
        for _ in 0..400 {
            net.step();
            pg.tick(&mut net);
        }
        let a = grid.node(Coord::new(0, 0));
        let b = grid.node(Coord::new(3, 3));
        net.inject(Packet::request(1, a, b, 0)).unwrap();
        let mut woke = 0;
        for _ in 0..600 {
            net.step();
            // No pg.tick: do not re-sleep during measurement.
            if net.drain_delivered().len() == 1 {
                woke = 1;
                break;
            }
        }
        assert_eq!(woke, 1, "packet must get through sleeping routers");
        // Latency with wake penalties far exceeds the gate-free case.
        let mut fresh = mesh_net(cfg);
        fresh.inject(Packet::request(1, a, b, 0)).unwrap();
        fresh.run(200);
        let base = fresh.drain_delivered()[0].network_latency();
        // (Re-measure gated latency properly.)
        let mut gated_net = mesh_net(SimConfig::baseline());
        let mut pg2 = PowerGatePolicy::new(16);
        for _ in 0..400 {
            gated_net.step();
            pg2.tick(&mut gated_net);
        }
        gated_net.inject(Packet::request(2, a, b, 0)).unwrap();
        gated_net.run(600);
        let gated = gated_net.drain_delivered()[0].network_latency();
        assert!(gated > base, "gated {gated} should exceed base {base}");
    }
}

//! Heterogeneous chip layout: which tile hosts a CPU, a GPU, or a memory
//! controller, and how applications map onto rectangular regions.
//!
//! The paper's 8x8 evaluation system (Sec. IV-A): one MC per 2x4 subNoC
//! (8 MCs total); a Rodinia (GPU) region is built from 2x4 blocks of
//! 1 CPU + 1 MC + 6 GPUs; a Parsec (CPU) region from 2x4 blocks of
//! 7 CPUs + 1 MC.

use adaptnoc_sim::ids::NodeId;
use adaptnoc_topology::geom::{Coord, Grid, Rect};

/// What a tile's endpoint node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A general-purpose CPU core with private L1 and a shared-L2 slice.
    Cpu,
    /// A throughput-oriented GPU core (8-wide SIMD in the paper).
    Gpu,
    /// A memory controller managing off-chip accesses.
    Mc,
}

impl NodeKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Cpu => "cpu",
            NodeKind::Gpu => "gpu",
            NodeKind::Mc => "mc",
        }
    }
}

/// An application's placement: a rectangular subNoC-able region plus its
/// memory controllers (one per 2x4 block, Sec. II-C2: "we implement one MC
/// to each 2x4 subNoC in an 8x8 NoC").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppRegion {
    /// Footprint on the chip.
    pub rect: Rect,
    /// The region's primary memory controller (tree root).
    pub mc: NodeId,
    /// All memory controllers in the region (one per 2x4 block).
    pub mcs: Vec<NodeId>,
}

/// Splits a region into the paper's 8-tile MC blocks: 4x2 blocks when the
/// shape allows, else 2x4, else the whole region as one block.
pub fn mc_blocks(rect: Rect) -> Vec<Rect> {
    let (bw, bh) = if rect.w.is_multiple_of(4) && rect.h.is_multiple_of(2) {
        (4u8, 2u8)
    } else if rect.w.is_multiple_of(2) && rect.h.is_multiple_of(4) {
        (2, 4)
    } else {
        return vec![rect];
    };
    let mut out = Vec::new();
    for by in 0..rect.h / bh {
        for bx in 0..rect.w / bw {
            out.push(Rect::new(rect.x + bx * bw, rect.y + by * bh, bw, bh));
        }
    }
    out
}

/// The heterogeneous chip: a grid plus per-tile node kinds and the current
/// application regions.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipLayout {
    /// The tile grid.
    pub grid: Grid,
    /// Per-node kind (indexed by node id).
    pub kinds: Vec<NodeKind>,
    /// Application regions (disjoint).
    pub regions: Vec<AppRegion>,
}

impl ChipLayout {
    /// Builds a layout from disjoint regions, following the paper's 2x4
    /// block recipe: each 8-tile block gets one MC on its origin tile;
    /// CPU regions fill the rest with CPUs (7 CPUs + 1 MC per block), GPU
    /// regions place one CPU per block and GPUs elsewhere (6 GPUs + 1 CPU
    /// + 1 MC per block).
    ///
    /// # Panics
    ///
    /// Panics if regions overlap or leave the grid.
    pub fn new(grid: Grid, specs: &[(Rect, bool)]) -> Self {
        let mut kinds = vec![NodeKind::Cpu; grid.tiles()];
        let mut regions = Vec::new();
        for (i, &(rect, gpu)) in specs.iter().enumerate() {
            assert!(rect.fits(&grid), "region {rect} outside grid");
            for (j, &(other, _)) in specs.iter().enumerate() {
                assert!(i == j || !rect.overlaps(&other), "regions overlap");
            }
            let mut mcs = Vec::new();
            for block in mc_blocks(rect) {
                let mc_tile = block.origin();
                let mc = grid.node(mc_tile);
                kinds[mc.index()] = NodeKind::Mc;
                mcs.push(mc);
                let mut cpu_placed = false;
                for c in block.iter() {
                    if c == mc_tile {
                        continue;
                    }
                    let n = grid.node(c).index();
                    kinds[n] = if gpu {
                        if !cpu_placed {
                            cpu_placed = true;
                            NodeKind::Cpu
                        } else {
                            NodeKind::Gpu
                        }
                    } else {
                        NodeKind::Cpu
                    };
                }
            }
            regions.push(AppRegion {
                rect,
                mc: mcs[0],
                mcs,
            });
        }
        ChipLayout {
            grid,
            kinds,
            regions,
        }
    }

    /// The paper's mixed-workload layout: three applications on the 8x8
    /// chip — one 4x4 CPU (Parsec) region, one 4x4 GPU (Rodinia) region,
    /// and one 8x4 GPU region.
    pub fn paper_mixed() -> Self {
        ChipLayout::new(
            Grid::paper(),
            &[
                (Rect::new(0, 0, 4, 4), false),
                (Rect::new(4, 0, 4, 4), true),
                (Rect::new(0, 4, 8, 4), true),
            ],
        )
    }

    /// A single-application layout covering `rect` (CPU or GPU region) on
    /// the 8x8 chip.
    pub fn single(rect: Rect, gpu: bool) -> Self {
        ChipLayout::new(Grid::paper(), &[(rect, gpu)])
    }

    /// A chiplet-package layout: one application region per chip of the
    /// fabric, each following the MC-block recipe. Chips listed in
    /// `gpu_chips` (by `(cx, cy)` chip coordinates) become GPU regions.
    ///
    /// Pair this with [`adaptnoc_topology::chiplet::chiplet_chip`] to build
    /// the matching network: regions never span a chip boundary, so each
    /// application's traffic stays on its own subNoC mesh while memory and
    /// coherence traffic crosses the serialized inter-chip links.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see
    /// [`adaptnoc_topology::chiplet::ChipletConfig::validate`]).
    pub fn chiplet(cc: &adaptnoc_topology::chiplet::ChipletConfig, gpu_chips: &[(u8, u8)]) -> Self {
        cc.validate().expect("invalid chiplet config");
        let mut specs = Vec::new();
        for cy in 0..cc.chips_y {
            for cx in 0..cc.chips_x {
                specs.push((cc.chip_rect(cx, cy), gpu_chips.contains(&(cx, cy))));
            }
        }
        ChipLayout::new(cc.grid(), &specs)
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// Nodes of a given kind inside a region.
    pub fn nodes_of_kind(&self, rect: Rect, kind: NodeKind) -> Vec<NodeId> {
        rect.iter()
            .map(|c| self.grid.node(c))
            .filter(|n| self.kind(*n) == kind)
            .collect()
    }

    /// All nodes inside a region.
    pub fn region_nodes(&self, rect: Rect) -> Vec<NodeId> {
        rect.iter().map(|c| self.grid.node(c)).collect()
    }

    /// The region that contains a node, if any.
    pub fn region_of(&self, n: NodeId) -> Option<&AppRegion> {
        let c = self.grid.node_coord(n);
        self.regions.iter().find(|r| r.rect.contains(c))
    }
}

/// A convenience for placing MCs on a region edge tile other than the
/// origin (tests and custom layouts).
pub fn mc_tile_of(region: &AppRegion, grid: &Grid) -> Coord {
    grid.node_coord(region.mc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mixed_layout_shape() {
        let l = ChipLayout::paper_mixed();
        assert_eq!(l.regions.len(), 3);
        assert_eq!(l.kinds.len(), 64);
        // One MC per 2x4 block: 8 over the whole 8x8 chip (Sec. II-C2).
        let mcs = l.kinds.iter().filter(|k| **k == NodeKind::Mc).count();
        assert_eq!(mcs, 8, "one MC per 2x4 block");
        let gpus = l.kinds.iter().filter(|k| **k == NodeKind::Gpu).count();
        // GPU regions: 6 GPUs per block; 2 blocks (4x4) + 4 blocks (8x4).
        assert_eq!(gpus, 6 * 2 + 6 * 4);
    }

    #[test]
    fn cpu_region_follows_block_recipe() {
        // 4x4 = two 4x2 blocks: 2 MCs + 14 CPUs.
        let l = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
        let rect = l.regions[0].rect;
        assert_eq!(l.nodes_of_kind(rect, NodeKind::Mc).len(), 2);
        assert_eq!(l.nodes_of_kind(rect, NodeKind::Cpu).len(), 14);
        assert_eq!(l.nodes_of_kind(rect, NodeKind::Gpu).len(), 0);
        assert_eq!(l.regions[0].mcs.len(), 2);
    }

    #[test]
    fn gpu_region_follows_block_recipe() {
        // 4x8 = four blocks: 4 MCs + 4 CPUs + 24 GPUs (the paper's Rodinia
        // region: "4 CPUs, 4 MCs, and 24 GPUs").
        let l = ChipLayout::single(Rect::new(4, 0, 4, 8), true);
        let rect = l.regions[0].rect;
        assert_eq!(l.nodes_of_kind(rect, NodeKind::Mc).len(), 4);
        assert_eq!(l.nodes_of_kind(rect, NodeKind::Cpu).len(), 4);
        assert_eq!(l.nodes_of_kind(rect, NodeKind::Gpu).len(), 24);
    }

    #[test]
    fn mc_blocks_prefer_4x2() {
        assert_eq!(mc_blocks(Rect::new(0, 0, 4, 4)).len(), 2);
        assert_eq!(mc_blocks(Rect::new(0, 0, 8, 4)).len(), 4);
        assert_eq!(mc_blocks(Rect::new(0, 0, 2, 4)).len(), 1);
        assert_eq!(mc_blocks(Rect::new(0, 0, 8, 8)).len(), 8);
        // Odd shapes collapse to one block.
        assert_eq!(mc_blocks(Rect::new(0, 0, 3, 3)).len(), 1);
    }

    #[test]
    fn primary_mc_sits_on_region_origin() {
        let l = ChipLayout::paper_mixed();
        for r in &l.regions {
            assert_eq!(l.grid.node_coord(r.mc), r.rect.origin());
            assert_eq!(l.kind(r.mc), NodeKind::Mc);
            for &mc in &r.mcs {
                assert_eq!(l.kind(mc), NodeKind::Mc);
            }
        }
    }

    #[test]
    fn region_of_lookup() {
        let l = ChipLayout::paper_mixed();
        let n = l.grid.node(Coord::new(5, 1));
        assert_eq!(l.region_of(n).unwrap().rect, Rect::new(4, 0, 4, 4));
        let n2 = l.grid.node(Coord::new(1, 6));
        assert_eq!(l.region_of(n2).unwrap().rect, Rect::new(0, 4, 8, 4));
    }

    #[test]
    fn chiplet_layout_builds_regions_per_chip() {
        use adaptnoc_topology::chiplet::ChipletConfig;
        let cc = ChipletConfig::new(2, 2, 4, 4);
        let l = ChipLayout::chiplet(&cc, &[(1, 0), (1, 1)]);
        assert_eq!(l.regions.len(), 4);
        assert_eq!(l.kinds.len(), 64);
        // Each 4x4 chip holds two 4x2 MC blocks.
        let mcs = l.kinds.iter().filter(|k| **k == NodeKind::Mc).count();
        assert_eq!(mcs, 8);
        // GPU chips carry GPU nodes, CPU chips none.
        assert!(!l
            .nodes_of_kind(cc.chip_rect(1, 0), NodeKind::Gpu)
            .is_empty());
        assert!(l
            .nodes_of_kind(cc.chip_rect(0, 0), NodeKind::Gpu)
            .is_empty());
    }

    #[test]
    fn chiplet_layout_network_carries_cross_chip_traffic() {
        use adaptnoc_sim::config::SimConfig;
        use adaptnoc_sim::network::Network;
        use adaptnoc_sim::prelude::Packet;
        use adaptnoc_topology::chiplet::{chiplet_chip, ChipletConfig};
        let cc = ChipletConfig::new(2, 1, 4, 4);
        let l = ChipLayout::chiplet(&cc, &[]);
        let cfg = SimConfig::baseline();
        let spec = chiplet_chip(&cc, &cfg).unwrap();
        let mut net = Network::new(spec, cfg).unwrap();
        // MC of chip (0,0) answers a request from a core on chip (1,0).
        let core = l.grid.node(Coord::new(6, 2));
        let mc = l.regions[0].mc;
        net.inject(Packet::request(1, core, mc, 0)).unwrap();
        net.inject(Packet::reply(2, mc, core, 0)).unwrap();
        for _ in 0..2000 {
            net.step();
        }
        assert_eq!(net.drain_delivered().len(), 2);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_regions_panic() {
        ChipLayout::new(
            Grid::paper(),
            &[
                (Rect::new(0, 0, 4, 4), false),
                (Rect::new(2, 2, 4, 4), true),
            ],
        );
    }

    #[test]
    fn node_kind_names() {
        assert_eq!(NodeKind::Cpu.name(), "cpu");
        assert_eq!(NodeKind::Gpu.name(), "gpu");
        assert_eq!(NodeKind::Mc.name(), "mc");
    }
}

//! The adaptable-link resource model (Sec. II-A2).
//!
//! One bidirectional adaptable link — a *forward* wire and a *reverse*
//! wire — runs across each row and each column of the chip. Quad-state
//! repeaters segment each wire into disjoint intervals and set each
//! segment's propagation direction (link reversal). This module tracks the
//! wire inventory and verifies that the adaptable channels of a built
//! [`NetworkSpec`] fit it: segments on one wire must not overlap, and a
//! reversed segment must be flagged (it pays the extra repeater delay and
//! is accounted as a reversed wire).

use adaptnoc_sim::spec::{ChannelKind, ChannelSpec, NetworkSpec};
use adaptnoc_topology::geom::Grid;
use std::collections::HashMap;

/// One wire of an adaptable link pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wire {
    /// The forward wire: eastbound in rows, northbound in columns.
    Forward,
    /// The reverse wire: westbound in rows, southbound in columns.
    Reverse,
}

/// A physical line carrying an adaptable link pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Line {
    /// The adaptable link of row `y`.
    Row(u8),
    /// The adaptable link of column `x`.
    Col(u8),
}

/// One allocated segment: `[lo, hi]` positions on a line's wire, with its
/// configured direction (`ascending` = east/north).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Line the segment lives on.
    pub line: Line,
    /// Wire of the pair.
    pub wire: Wire,
    /// Lower position (inclusive).
    pub lo: u8,
    /// Upper position (inclusive).
    pub hi: u8,
    /// Signal direction: true = towards increasing position.
    pub ascending: bool,
}

/// Errors from fitting channels onto the adaptable-link inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A channel marked adaptable is not row/column aligned.
    NotAligned,
    /// Two segments on the same wire overlap.
    Overlap(Segment, Segment),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::NotAligned => write!(f, "adaptable channel not row/column aligned"),
            LinkError::Overlap(a, b) => write!(
                f,
                "overlapping adaptable segments [{}..{}] and [{}..{}] on {:?} {:?}",
                a.lo, a.hi, b.lo, b.hi, a.line, a.wire
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// Converts an adaptable channel into its wire segment. The natural wire
/// for an ascending segment is Forward and for a descending one Reverse;
/// a channel marked [`ChannelKind::AdaptableReversed`] takes the *other*
/// wire with its direction flipped (link reversal).
pub fn segment_of(grid: &Grid, ch: &ChannelSpec) -> Result<Segment, LinkError> {
    let a = grid.coord(ch.src.router);
    let b = grid.coord(ch.dst.router);
    let (line, from, to) = if a.y == b.y && a.x != b.x {
        (Line::Row(a.y), a.x, b.x)
    } else if a.x == b.x && a.y != b.y {
        (Line::Col(a.x), a.y, b.y)
    } else {
        return Err(LinkError::NotAligned);
    };
    let ascending = to > from;
    let natural = if ascending {
        Wire::Forward
    } else {
        Wire::Reverse
    };
    let wire = match ch.kind {
        ChannelKind::AdaptableReversed => match natural {
            Wire::Forward => Wire::Reverse,
            Wire::Reverse => Wire::Forward,
        },
        _ => natural,
    };
    Ok(Segment {
        line,
        wire,
        lo: from.min(to),
        hi: from.max(to),
        ascending,
    })
}

/// Inventory check: extracts all adaptable segments of a spec and verifies
/// that segments sharing a wire do not overlap (their interiors are
/// disjoint; touching at an endpoint repeater is allowed).
///
/// # Errors
///
/// Returns [`LinkError`] on misaligned channels or overlapping segments.
pub fn check_adaptable_links(grid: &Grid, spec: &NetworkSpec) -> Result<Vec<Segment>, LinkError> {
    let mut by_wire: HashMap<(Line, Wire), Vec<Segment>> = HashMap::new();
    let mut all = Vec::new();
    for ch in &spec.channels {
        if !ch.kind.is_adaptable() {
            continue;
        }
        let seg = segment_of(grid, ch)?;
        let list = by_wire.entry((seg.line, seg.wire)).or_default();
        for other in list.iter() {
            // Interiors must be disjoint: [lo,hi] and [lo2,hi2] may share
            // at most an endpoint (a quad-state repeater boundary).
            if seg.lo < other.hi && other.lo < seg.hi {
                return Err(LinkError::Overlap(*other, seg));
            }
        }
        list.push(seg);
        all.push(seg);
    }
    Ok(all)
}

/// Counts the adaptable wires in use (for power/wiring reports).
pub fn wires_in_use(segments: &[Segment]) -> usize {
    let mut wires: Vec<(Line, Wire)> = segments.iter().map(|s| (s.line, s.wire)).collect();
    wires.sort_by_key(|(l, w)| {
        let l = match l {
            Line::Row(y) => (*y as u16) << 1,
            Line::Col(x) => ((*x as u16) << 1) | 1,
        };
        (l, matches!(w, Wire::Reverse))
    });
    wires.dedup();
    wires.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_sim::ids::PortId;
    use adaptnoc_sim::spec::PortRef;
    use adaptnoc_topology::prelude::*;

    fn express(grid: &Grid, a: Coord, b: Coord, kind: ChannelKind) -> ChannelSpec {
        ChannelSpec {
            src: PortRef::new(grid.router(a), PortId(0)),
            dst: PortRef::new(grid.router(b), PortId(1)),
            latency: 1,
            length_mm: a.manhattan(b) as f32,
            dateline: false,
            dim_y: a.x == b.x,
            kind,
        }
    }

    #[test]
    fn segment_mapping_natural_wires() {
        let grid = Grid::paper();
        let east = segment_of(
            &grid,
            &express(
                &grid,
                Coord::new(0, 2),
                Coord::new(5, 2),
                ChannelKind::Adaptable,
            ),
        )
        .unwrap();
        assert_eq!(east.line, Line::Row(2));
        assert_eq!(east.wire, Wire::Forward);
        assert!(east.ascending);
        assert_eq!((east.lo, east.hi), (0, 5));

        let south = segment_of(
            &grid,
            &express(
                &grid,
                Coord::new(3, 6),
                Coord::new(3, 1),
                ChannelKind::Adaptable,
            ),
        )
        .unwrap();
        assert_eq!(south.line, Line::Col(3));
        assert_eq!(south.wire, Wire::Reverse);
        assert!(!south.ascending);
    }

    #[test]
    fn reversed_channel_takes_other_wire() {
        let grid = Grid::paper();
        let seg = segment_of(
            &grid,
            &express(
                &grid,
                Coord::new(0, 0),
                Coord::new(4, 0),
                ChannelKind::AdaptableReversed,
            ),
        )
        .unwrap();
        // Eastbound but on the reverse wire (the paper's tree trick:
        // two same-direction wires).
        assert!(seg.ascending);
        assert_eq!(seg.wire, Wire::Reverse);
    }

    #[test]
    fn diagonal_adaptable_rejected() {
        let grid = Grid::paper();
        let err = segment_of(
            &grid,
            &express(
                &grid,
                Coord::new(0, 0),
                Coord::new(2, 2),
                ChannelKind::Adaptable,
            ),
        );
        assert_eq!(err, Err(LinkError::NotAligned));
    }

    #[test]
    fn overlapping_segments_detected() {
        let grid = Grid::paper();
        let mut spec = NetworkSpec::new(64, 64, 2);
        spec.add_channel(express(
            &grid,
            Coord::new(0, 0),
            Coord::new(4, 0),
            ChannelKind::Adaptable,
        ));
        // Same wire, overlapping interval [2,6] vs [0,4].
        let mut ch2 = express(
            &grid,
            Coord::new(2, 0),
            Coord::new(6, 0),
            ChannelKind::Adaptable,
        );
        ch2.src.port = PortId(2);
        ch2.dst.port = PortId(3);
        spec.add_channel(ch2);
        assert!(matches!(
            check_adaptable_links(&grid, &spec),
            Err(LinkError::Overlap(_, _))
        ));
    }

    #[test]
    fn touching_segments_allowed() {
        let grid = Grid::paper();
        let mut spec = NetworkSpec::new(64, 64, 2);
        spec.add_channel(express(
            &grid,
            Coord::new(0, 0),
            Coord::new(3, 0),
            ChannelKind::Adaptable,
        ));
        let mut ch2 = express(
            &grid,
            Coord::new(3, 0),
            Coord::new(6, 0),
            ChannelKind::Adaptable,
        );
        ch2.src.port = PortId(2);
        ch2.dst.port = PortId(3);
        spec.add_channel(ch2);
        let segs = check_adaptable_links(&grid, &spec).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(wires_in_use(&segs), 1, "both on the row-0 forward wire");
    }

    #[test]
    fn opposite_directions_use_both_wires() {
        let grid = Grid::paper();
        let mut spec = NetworkSpec::new(64, 64, 2);
        spec.add_channel(express(
            &grid,
            Coord::new(0, 0),
            Coord::new(7, 0),
            ChannelKind::Adaptable,
        ));
        let mut ch2 = express(
            &grid,
            Coord::new(7, 0),
            Coord::new(0, 0),
            ChannelKind::Adaptable,
        );
        ch2.src.port = PortId(2);
        ch2.dst.port = PortId(3);
        spec.add_channel(ch2);
        let segs = check_adaptable_links(&grid, &spec).unwrap();
        assert_eq!(wires_in_use(&segs), 2);
    }

    #[test]
    fn paper_topologies_fit_the_inventory() {
        // Every composed topology's adaptable channels must fit the
        // one-link-per-row/column budget.
        let grid = Grid::paper();
        let cfg = SimConfig::adapt_noc();
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Cmesh,
            TopologyKind::Torus,
            TopologyKind::Tree,
            TopologyKind::TorusTree,
        ] {
            for rect in [
                Rect::new(0, 0, 4, 4),
                Rect::new(4, 0, 4, 8),
                Rect::new(0, 0, 8, 8),
            ] {
                let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg).unwrap();
                check_adaptable_links(&grid, &spec)
                    .unwrap_or_else(|e| panic!("{kind} in {rect}: {e}"));
            }
        }
    }
}

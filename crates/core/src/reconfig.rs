//! The deadlock-free dynamic subNoC reconfiguration protocol
//! (Sec. II-C1 walk-through, following Lysne's methodology \\[28\\]).
//!
//! Switching an `N x M` subNoC's topology proceeds in stages:
//!
//! 1. **Notify** — `(M + N − 2) × (T_r + T_l)` cycles to reach every router
//!    of the subNoC.
//! 2. **Drain** — routes over channels being *removed* are first retired:
//!    * *fast path* (the old and the new topology both contain the full
//!      region mesh — mesh/torus/tree): the mesh-fallback routing tables
//!      `R_mesh` are installed, traffic keeps flowing, and the old express
//!      segments drain on their own ("avoids the network stall and package
//!      drainage" of naive schemes);
//!    * *slow path* (a cmesh is involved, so even NI attachments move):
//!      the region's NIs are paused (they keep queueing) and the region
//!      drains completely.
//! 3. **Swap** — the structural diff is applied atomically; in-flight
//!    traffic on kept channels is preserved (enforced by
//!    [`Network::reconfigure`]).
//! 4. **Setup** — every region router stalls for `T_s` cycles (its routing
//!    table is being written), then `R_new` is live. Paused NIs resume.
//!
//! Each routing function involved is deadlock-free and `R_mesh` adds no
//! cycle when combined with either (validated by
//! `adaptnoc_topology::validate`), satisfying Lysne's sufficient
//! conditions.

use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::{Network, NetworkError};
use adaptnoc_sim::routing::RoutingTables;
use adaptnoc_sim::spec::NetworkSpec;
use adaptnoc_topology::geom::{Grid, Rect};
use adaptnoc_topology::regions::TopologyKind;
use std::collections::HashSet;
use std::sync::Arc;

/// Timing parameters of the protocol (Sec. IV-A values by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigTiming {
    /// Hop latency `T_r` (2 cycles).
    pub t_r: u64,
    /// Link latency `T_l` (1 cycle).
    pub t_l: u64,
    /// Connection setup time `T_s` (14 cycles, following Hu et al. \\[43\\]).
    pub t_s: u64,
}

impl Default for ReconfigTiming {
    fn default() -> Self {
        ReconfigTiming {
            t_r: 2,
            t_l: 1,
            t_s: 14,
        }
    }
}

impl ReconfigTiming {
    /// The notification latency for an `w x h` subNoC:
    /// `(M + N − 2) (T_r + T_l)`.
    pub fn notify_cycles(&self, rect: Rect) -> u64 {
        (rect.w as u64 + rect.h as u64 - 2) * (self.t_r + self.t_l)
    }
}

/// Whether a topology keeps the full region mesh alive (fast-path capable).
pub fn keeps_mesh(kind: TopologyKind) -> bool {
    !matches!(kind, TopologyKind::Cmesh)
}

/// Protocol stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigStage {
    /// Notification wavefront propagating.
    Notify {
        /// Cycle at which every router has been notified.
        until: u64,
    },
    /// Old routes draining.
    Drain,
    /// Routers running their `T_s` setup.
    Setup {
        /// Cycle at which setup completes.
        until: u64,
    },
    /// Reconfiguration complete.
    Done,
}

/// An in-flight region reconfiguration.
#[derive(Debug, Clone)]
pub struct RegionReconfig {
    /// The subNoC being reconfigured.
    pub rect: Rect,
    /// Target full-chip spec, shared with the network at the swap (the
    /// controller never deep-copies a spec it already built).
    target: Arc<NetworkSpec>,
    /// Mesh-fallback tables (fast path only).
    transitional: Option<RoutingTables>,
    /// Current stage.
    pub stage: ReconfigStage,
    fast: bool,
    region_nodes: Vec<NodeId>,
    timing: ReconfigTiming,
    started_at: u64,
    /// Cycle the protocol finished, once done.
    pub finished_at: Option<u64>,
}

impl RegionReconfig {
    /// Starts a reconfiguration of `rect` towards `target` (a full-chip
    /// spec, owned or already behind an `Arc`). `transitional` must be the
    /// mesh-fallback tables when both the old and new topology keep the
    /// mesh (fast path); `None` selects the slow (pause-and-drain) path.
    pub fn start(
        net: &Network,
        grid: &Grid,
        rect: Rect,
        target: impl Into<Arc<NetworkSpec>>,
        transitional: Option<RoutingTables>,
        timing: ReconfigTiming,
    ) -> Self {
        let fast = transitional.is_some();
        let region_nodes = rect.iter().map(|c| grid.node(c)).collect();
        RegionReconfig {
            rect,
            target: target.into(),
            transitional,
            stage: ReconfigStage::Notify {
                until: net.now() + timing.notify_cycles(rect),
            },
            fast,
            region_nodes,
            timing,
            started_at: net.now(),
            finished_at: None,
        }
    }

    /// Starts a reconfiguration of `rect` back to a previously captured
    /// known-good spec (the self-healing ladder's last rung). Picks the
    /// fast path when the rollback target keeps every router's power state
    /// and every NI attachment unchanged — then the target's own tables are
    /// a valid transitional routing function — and the slow
    /// (pause-and-drain) path otherwise.
    pub fn rollback_to(
        net: &Network,
        grid: &Grid,
        rect: Rect,
        last_good: impl Into<Arc<NetworkSpec>>,
        timing: ReconfigTiming,
    ) -> Self {
        let target: Arc<NetworkSpec> = last_good.into();
        let cur = net.spec();
        let structure_kept = cur.routers.len() == target.routers.len()
            && cur
                .routers
                .iter()
                .zip(&target.routers)
                .all(|(a, b)| a.active == b.active)
            && cur.nis == target.nis;
        let transitional = structure_kept.then(|| target.tables.clone());
        Self::start(net, grid, rect, target, transitional, timing)
    }

    /// Total latency so far (or final latency once done).
    pub fn latency(&self, now: u64) -> u64 {
        self.finished_at
            .unwrap_or(now)
            .saturating_sub(self.started_at)
    }

    /// Advances the protocol by one cycle. Returns `true` once done.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from the structural swap (a quiescence
    /// violation here indicates a protocol bug — the drain stage must make
    /// the swap preconditions hold).
    pub fn tick(&mut self, net: &mut Network, grid: &Grid) -> Result<bool, NetworkError> {
        match self.stage {
            ReconfigStage::Notify { until } => {
                if net.now() >= until {
                    if let Some(tables) = self.transitional.take() {
                        // Fast path: R_mesh takes over; express channels
                        // drain while traffic keeps flowing.
                        net.install_tables(tables);
                    } else {
                        // Slow path: pause the region's NIs.
                        for &n in &self.region_nodes {
                            net.set_ni_paused(n, true);
                        }
                    }
                    self.stage = ReconfigStage::Drain;
                }
                Ok(false)
            }
            ReconfigStage::Drain => {
                if self.drained(net, grid) {
                    net.reconfigure_shared(Arc::clone(&self.target))?;
                    let until = net.now() + self.timing.t_s;
                    for c in self.rect.iter() {
                        net.begin_router_config(grid.router(c), self.timing.t_s);
                    }
                    self.stage = ReconfigStage::Setup { until };
                }
                Ok(false)
            }
            ReconfigStage::Setup { until } => {
                if net.now() >= until {
                    if !self.fast {
                        for &n in &self.region_nodes {
                            net.set_ni_paused(n, false);
                        }
                    }
                    self.stage = ReconfigStage::Done;
                    self.finished_at = Some(net.now());
                    return Ok(true);
                }
                Ok(false)
            }
            ReconfigStage::Done => Ok(true),
        }
    }

    fn drained(&self, net: &Network, grid: &Grid) -> bool {
        let region_routers: HashSet<u16> = self.rect.iter().map(|c| grid.router(c).0).collect();
        if self.fast {
            // Only channels being removed must be quiescent.
            let target_keys: HashSet<_> = self.target.channels.iter().map(|c| c.key()).collect();
            net.spec()
                .channels
                .iter()
                .filter(|c| {
                    region_routers.contains(&c.src.router.0)
                        || region_routers.contains(&c.dst.router.0)
                })
                .filter(|c| !target_keys.contains(&c.key()))
                .all(|c| net.channel_quiescent(c.key()))
        } else {
            // Full region quiesce: no buffered flits, no in-flight wires,
            // idle NIs.
            let routers_empty = region_routers
                .iter()
                .all(|&r| net.router_flits(adaptnoc_sim::ids::RouterId(r)) == 0);
            let channels_empty = net
                .spec()
                .channels
                .iter()
                .filter(|c| {
                    region_routers.contains(&c.src.router.0)
                        || region_routers.contains(&c.dst.router.0)
                })
                .all(|c| net.channel_quiescent(c.key()));
            let nis_idle = self.region_nodes.iter().all(|&n| net.ni_idle(n));
            routers_empty && channels_empty && nis_idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_sim::prelude::Packet;
    use adaptnoc_topology::prelude::*;

    fn chip(kind: TopologyKind) -> (NetworkSpec, Grid, Rect) {
        let grid = Grid::paper();
        let rect = Rect::new(0, 0, 4, 4);
        let spec = build_chip_spec(
            grid,
            &[RegionTopology::new(rect, kind)],
            &SimConfig::adapt_noc(),
        )
        .unwrap();
        (spec, grid, rect)
    }

    #[test]
    fn notify_latency_formula() {
        let t = ReconfigTiming::default();
        // 4x4: (4+4-2)*(2+1) = 18 cycles.
        assert_eq!(t.notify_cycles(Rect::new(0, 0, 4, 4)), 18);
        // 2x4: (2+4-2)*(3) = 12.
        assert_eq!(t.notify_cycles(Rect::new(0, 0, 2, 4)), 12);
        // 8x8: 14*3 = 42.
        assert_eq!(t.notify_cycles(Rect::new(0, 0, 8, 8)), 42);
    }

    #[test]
    fn fast_path_mesh_to_torus_under_traffic() {
        let (mesh_spec, grid, rect) = chip(TopologyKind::Mesh);
        let (torus_spec, _, _) = chip(TopologyKind::Torus);
        let cfg = SimConfig::adapt_noc();
        let mut net = adaptnoc_sim::network::Network::new(mesh_spec.clone(), cfg).unwrap();

        // Continuous traffic during the reconfiguration.
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let mut id = 0u64;
        let mut inject = |net: &mut adaptnoc_sim::network::Network, k: u64| {
            for i in 0..nodes.len() {
                let s = nodes[i];
                let d = nodes[(i + k as usize + 1) % nodes.len()];
                if s != d {
                    id += 1;
                    net.inject(Packet::request(id, s, d, 0)).unwrap();
                }
            }
        };

        let mut rc = RegionReconfig::start(
            &net,
            &grid,
            rect,
            torus_spec,
            Some(mesh_spec.tables.clone()),
            ReconfigTiming::default(),
        );
        let mut done_at = None;
        for k in 0..3000u64 {
            if k % 7 == 0 && k < 600 {
                inject(&mut net, k);
            }
            net.step();
            if done_at.is_none() && rc.tick(&mut net, &grid).unwrap() {
                done_at = Some(net.now());
            }
        }
        let done_at = done_at.expect("reconfiguration must complete");
        assert!(rc.latency(net.now()) > 0);
        assert_eq!(rc.finished_at, Some(done_at));
        // No packet lost across the switch.
        while net.in_flight() > 0 {
            net.step();
        }
        let delivered = net.drain_delivered().len() as u64;
        assert_eq!(delivered, id);
        // The network now runs the torus (wrap channels exist).
        assert!(net.spec().channels.iter().any(|c| c.dateline));
        assert_eq!(net.unroutable_events(), 0);
    }

    #[test]
    fn slow_path_mesh_to_cmesh_under_traffic() {
        let (mesh_spec, grid, rect) = chip(TopologyKind::Mesh);
        let (cmesh_spec, _, _) = chip(TopologyKind::Cmesh);
        let cfg = SimConfig::adapt_noc();
        let mut net = adaptnoc_sim::network::Network::new(mesh_spec, cfg).unwrap();
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let mut id = 0u64;
        for i in 0..nodes.len() {
            for j in 0..nodes.len() {
                if i != j && (i + j) % 3 == 0 {
                    id += 1;
                    net.inject(Packet::reply(id, nodes[i], nodes[j], 0))
                        .unwrap();
                }
            }
        }
        let mut rc = RegionReconfig::start(
            &net,
            &grid,
            rect,
            cmesh_spec,
            None,
            ReconfigTiming::default(),
        );
        let mut done = false;
        for _ in 0..20_000 {
            net.step();
            if !done && rc.tick(&mut net, &grid).unwrap() {
                done = true;
                // Inject more traffic after the switch: it must flow on the
                // cmesh.
                for i in 0..nodes.len() {
                    id += 1;
                    net.inject(Packet::request(
                        id,
                        nodes[i],
                        nodes[(i + 5) % nodes.len()],
                        0,
                    ))
                    .ok();
                }
                id -= 1; // one self-send skipped
                         // Recount precisely: the (i+5)%16 mapping never maps i to i
                         // for 16 nodes, so restore.
                id += 1;
            }
        }
        assert!(done, "reconfiguration must complete");
        while net.in_flight() > 0 {
            net.step();
        }
        assert_eq!(net.drain_delivered().len() as u64, id);
        // The cmesh is live: 12 routers gated.
        assert_eq!(net.spec().active_routers(), 64 - 12);
        assert_eq!(net.unroutable_events(), 0);
    }

    #[test]
    fn cmesh_back_to_mesh_roundtrip() {
        let (mesh_spec, grid, rect) = chip(TopologyKind::Mesh);
        let (cmesh_spec, _, _) = chip(TopologyKind::Cmesh);
        let cfg = SimConfig::adapt_noc();
        let mut net = adaptnoc_sim::network::Network::new(cmesh_spec, cfg).unwrap();
        let mut rc = RegionReconfig::start(
            &net,
            &grid,
            rect,
            mesh_spec,
            None,
            ReconfigTiming::default(),
        );
        for _ in 0..10_000 {
            net.step();
            if rc.tick(&mut net, &grid).unwrap() {
                break;
            }
        }
        assert_eq!(rc.stage, ReconfigStage::Done);
        assert_eq!(net.spec().active_routers(), 64);
        // Traffic flows on the restored mesh.
        let a = grid.node(Coord::new(0, 0));
        let b = grid.node(Coord::new(3, 3));
        net.inject(Packet::request(1, a, b, 0)).unwrap();
        net.run(200);
        assert_eq!(net.drain_delivered().len(), 1);
    }

    #[test]
    fn reconfig_latency_includes_all_stages() {
        let (mesh_spec, grid, rect) = chip(TopologyKind::Mesh);
        let (tree_spec, _, _) = chip(TopologyKind::Tree);
        let cfg = SimConfig::adapt_noc();
        let mut net = adaptnoc_sim::network::Network::new(mesh_spec.clone(), cfg).unwrap();
        let timing = ReconfigTiming::default();
        let mut rc = RegionReconfig::start(
            &net,
            &grid,
            rect,
            tree_spec,
            Some(mesh_spec.tables.clone()),
            timing,
        );
        let mut cycles = 0;
        loop {
            net.step();
            cycles += 1;
            if rc.tick(&mut net, &grid).unwrap() {
                break;
            }
            assert!(cycles < 1000, "reconfig too slow");
        }
        // At least notify + setup on an idle network.
        let min = timing.notify_cycles(rect) + timing.t_s;
        assert!(
            rc.latency(net.now()) >= min,
            "latency {} < {min}",
            rc.latency(net.now())
        );
    }
}

//! Randomized round-trip property: any well-formed scenario AST formats
//! to canonical text that reparses to the identical AST. Cases come from
//! the in-tree seeded PRNG for reproducibility.

use adaptnoc_scenario::prelude::*;
use adaptnoc_sim::rng::Rng;
use adaptnoc_topology::geom::Rect;
use adaptnoc_topology::regions::TopologyKind;

/// A float that formats without scientific notation (the lexer reads
/// plain `INT.FRAC` literals only).
fn nice_f64(rng: &mut Rng) -> f64 {
    rng.random_range(0, 80) as f64 * 0.05
}

fn nice_prob(rng: &mut Rng) -> f64 {
    rng.random_range(0, 21) as f64 * 0.05
}

fn nice_time(rng: &mut Rng) -> u64 {
    // Mix raw values with suffix-friendly multiples so both fmt_time
    // branches are exercised.
    match rng.random_range(0, 3) {
        0 => rng.random_range(0, 5000) as u64,
        1 => rng.random_range(1, 500) as u64 * 1_000,
        _ => rng.random_range(1, 20) as u64 * 1_000_000,
    }
}

fn random_pattern(rng: &mut Rng, regions: &[(String, Rect)]) -> PatternAst {
    match rng.random_range(0, 6) {
        0 => PatternAst::Uniform,
        1 => PatternAst::Transpose,
        2 => PatternAst::Neighbor,
        3 => PatternAst::Zipf(0.5 + nice_f64(rng)),
        4 => PatternAst::HotspotNode(rng.random_range(0, 64) as u16),
        _ => match regions.first() {
            Some((name, _)) => PatternAst::HotspotRegion(name.clone()),
            None => PatternAst::Uniform,
        },
    }
}

fn random_traffic(rng: &mut Rng, sc: &Scenario) -> TrafficCmd {
    TrafficCmd {
        pattern: random_pattern(rng, &sc.regions),
        load: if sc.sweep.is_some() && rng.random_bool(0.3) {
            LoadAst::Sweep
        } else {
            LoadAst::Fixed(nice_f64(rng))
        },
        arrival: match rng.random_range(0, 3) {
            0 => ArrivalAst::Bernoulli,
            1 => ArrivalAst::Poisson,
            _ => ArrivalAst::Mmpp {
                burst: 1.0 + nice_f64(rng),
                p_on: nice_prob(rng),
                p_off: nice_prob(rng),
            },
        },
        shape: match rng.random_range(0, 4) {
            0 => ShapeAst::Constant,
            1 => ShapeAst::RampTo {
                rate: nice_f64(rng),
                over: nice_time(rng).max(1),
            },
            2 => ShapeAst::Diurnal {
                amplitude: nice_prob(rng),
                period: nice_time(rng).max(1),
            },
            _ => ShapeAst::Burst {
                factor: 1.0 + nice_f64(rng),
                every: nice_time(rng).max(1),
                len: nice_time(rng).max(1),
            },
        },
        region: match (sc.regions.len(), rng.random_bool(0.4)) {
            (n, true) if n > 0 => Some(sc.regions[rng.random_range(0, n)].0.clone()),
            _ => None,
        },
    }
}

fn random_action(rng: &mut Rng, sc: &Scenario) -> Action {
    match rng.random_range(0, 6) {
        0 | 1 => Action::Traffic(random_traffic(rng, sc)),
        2 => Action::KillRouter(rng.random_range(0, 64) as u16),
        3 => Action::KillLink {
            from: rng.random_range(0, 64) as u16,
            to: rng.random_range(0, 64) as u16,
        },
        4 => Action::GlitchLink {
            from: rng.random_range(0, 64) as u16,
            to: rng.random_range(0, 64) as u16,
            duration: nice_time(rng).max(1),
        },
        _ => match sc.regions.first() {
            Some((name, _)) => Action::Reconfigure {
                region: name.clone(),
                to: TopologyKind::ACTIONS[rng.random_range(0, 4)],
            },
            None => Action::KillRouter(rng.random_range(0, 64) as u16),
        },
    }
}

fn random_scenario(rng: &mut Rng) -> Scenario {
    // About a fifth of cases run on a chiplet fabric (whose footprint
    // fixes the grid); the rest on a flat mesh. Fabric scenarios keep
    // the same event generator — permanent faults and reconfigures are
    // rejected at *compile* time, not parse time, so the round-trip
    // property must hold for them regardless.
    let fabric = if rng.random_bool(0.2) {
        Some(FabricAst {
            chips_x: rng.random_range(1, 4) as u8,
            chips_y: rng.random_range(1, 4) as u8,
            chip_w: rng.random_range(2, 5) as u8,
            chip_h: rng.random_range(2, 5) as u8,
            link_latency: rng.random_range(1, 9) as u8,
            links_per_edge: rng.random_range(1, 3) as u8,
        })
    } else {
        None
    };
    let grid = match fabric {
        Some(fb) => (fb.chips_x * fb.chip_w, fb.chips_y * fb.chip_h),
        None => (rng.random_range(2, 11) as u8, rng.random_range(2, 11) as u8),
    };
    let mut sc = Scenario {
        grid,
        fabric,
        seed: rng.random_range(0, 1 << 20) as u64,
        warmup: nice_time(rng),
        duration: nice_time(rng).max(1),
        epoch: nice_time(rng).max(1),
        regions: Vec::new(),
        sweep: None,
        events: Vec::new(),
    };
    for name in ["A", "B", "C"].iter().take(rng.random_range(0, 4)) {
        sc.regions.push((
            name.to_string(),
            Rect::new(
                rng.random_range(0, 4) as u8,
                rng.random_range(0, 4) as u8,
                rng.random_range(1, 5) as u8,
                rng.random_range(1, 5) as u8,
            ),
        ));
    }
    if rng.random_bool(0.4) {
        sc.sweep = Some(Sweep {
            from: 0.05 + nice_prob(rng),
            to: 1.0 + nice_f64(rng),
            step: 0.05 + nice_prob(rng),
        });
    }
    for _ in 0..rng.random_range(0, 8) {
        let at = nice_time(rng);
        let action = random_action(rng, &sc);
        sc.events.push(Event { at, action });
    }
    sc
}

/// For any generated scenario: `parse(format(sc)) == sc`, and the
/// canonical form is a fixed point (formatting the reparse changes
/// nothing).
#[test]
fn canonical_form_round_trips_for_random_scenarios() {
    let mut rng = Rng::seed_from_u64(0x5C11);
    for case in 0..200 {
        let sc = random_scenario(&mut rng);
        let text = sc.to_string();
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: canonical text must reparse: {e}\n{text}"));
        assert_eq!(back, sc, "case {case}: round trip must be lossless\n{text}");
        assert_eq!(back.to_string(), text, "case {case}: canonical fixed point");
    }
}

/// Compiled plans are insensitive to the formatting trip as well: a
/// compilable random scenario compiles identically from its canonical
/// text.
#[test]
fn compile_is_stable_under_round_trip() {
    let mut rng = Rng::seed_from_u64(0xC0DE);
    let mut compiled = 0;
    for _ in 0..200 {
        let sc = random_scenario(&mut rng);
        let Ok(plan) = compile(&sc) else { continue };
        compiled += 1;
        let back = parse(&sc.to_string()).expect("canonical text reparses");
        assert_eq!(compile(&back).expect("reparse compiles"), plan);
    }
    assert!(compiled > 10, "generator must produce compilable scenarios");
}

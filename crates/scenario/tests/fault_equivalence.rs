//! Scripted faults are plain data: a `.scn` fault event compiles to the
//! same `FaultSchedule` — and the runner produces the same packet trace —
//! as a hand-built [`ExecPlan`] with the equivalent schedule. Same
//! "two constructions, identical observable history" shape as the sim
//! crate's equivalence suites.

use adaptnoc_faults::schedule::{FaultEvent, FaultKind, FaultSchedule};
use adaptnoc_scenario::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::RouterId;
use adaptnoc_topology::chip::mesh_chip;
use adaptnoc_topology::geom::{Grid, Rect};
use adaptnoc_workloads::open::{Arrival, DestPattern, RateShape, TrafficSpec};

fn hand_built_plan() -> ExecPlan {
    let grid = Grid::new(4, 4);
    let spec = mesh_chip(grid, &SimConfig::baseline()).unwrap();
    let key = |from: u16, to: u16| {
        spec.channels
            .iter()
            .find(|c| c.src.router.0 == from && c.dst.router.0 == to)
            .map(|c| c.key())
            .expect("adjacent routers share a channel")
    };
    ExecPlan {
        grid,
        seed: 9,
        warmup: 1_000,
        duration: 6_000,
        epoch: 2_000,
        regions: Vec::new(),
        fabric: None,
        faults: FaultSchedule::new(vec![
            FaultEvent {
                at: 2_000,
                kind: FaultKind::TransientLink {
                    key: key(1, 2),
                    duration: 800,
                },
            },
            FaultEvent {
                at: 4_000,
                kind: FaultKind::PermanentRouter {
                    router: RouterId(10),
                },
            },
        ]),
        traffic: vec![TrafficEvent {
            at: 0,
            rect: Rect::new(0, 0, 4, 4),
            spec: TrafficSpec {
                rate: 0.1,
                arrival: Arrival::Poisson,
                dest: DestPattern::Uniform,
                shape: RateShape::Constant,
            },
            sweep_load: false,
        }],
        reconfigs: Vec::new(),
        sweep: None,
    }
}

const SRC: &str = "grid 4 4; seed 9; warmup 1K; duration 6K; epoch 2K;\n\
                   t=0 uniform load 0.1 poisson;\n\
                   t=2K glitch link 1 -> 2 for 800;\n\
                   t=4K kill router 10;";

#[test]
fn scripted_faults_compile_to_the_hand_built_schedule() {
    let plan = compile(&parse(SRC).unwrap()).unwrap();
    assert_eq!(plan, hand_built_plan());
}

#[test]
fn scripted_and_hand_built_plans_produce_identical_traces() {
    let opts = RunOptions {
        trace_capacity: 1 << 16,
        ..RunOptions::default()
    };
    let scripted = run(&compile(&parse(SRC).unwrap()).unwrap(), &opts).unwrap();
    let hand = run(&hand_built_plan(), &opts).unwrap();
    assert!(!scripted.trace.is_empty(), "the run must trace packets");
    assert_eq!(
        scripted.trace, hand.trace,
        "event-for-event identical packet histories"
    );
    assert_eq!(scripted, hand, "identical outcomes, epochs included");
}

//! Golden corpus: every checked-in `scenarios/*.scn` file parses,
//! round-trips through its canonical form, compiles, and replays
//! deterministically. CI runs this job against the same corpus, so a
//! grammar change that breaks a shipped scenario fails here first.

use adaptnoc_scenario::prelude::*;
use std::path::PathBuf;

fn corpus() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut files: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("scenarios/ corpus directory at the repo root")
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension()? != "scn" {
                return None;
            }
            let name = path.file_name()?.to_string_lossy().into_owned();
            Some((name, std::fs::read_to_string(&path).ok()?))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn every_corpus_scenario_parses_compiles_and_round_trips() {
    let files = corpus();
    assert!(files.len() >= 5, "corpus must stay populated: {files:?}");
    for (name, src) in &files {
        let sc = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let canon = sc.to_string();
        let back = parse(&canon).unwrap_or_else(|e| panic!("{name} (canonical): {e}"));
        assert_eq!(back, sc, "{name}: canonical form must round trip");
        compile(&sc).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Each corpus scenario replays deterministically: a truncated run (so
/// the whole corpus stays fast) repeated twice gives identical outcomes
/// and delivers traffic.
#[test]
fn corpus_scenarios_replay_deterministically() {
    for (name, src) in corpus() {
        let mut plan = compile(&parse(&src).unwrap()).unwrap();
        plan.warmup = 500;
        plan.duration = 2_000;
        plan.epoch = 1_000;
        let opts = RunOptions {
            load: plan.uses_sweep_load().then_some(0.1),
            ..RunOptions::default()
        };
        let a = run(&plan, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = run(&plan, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(a, b, "{name}: replay must be deterministic");
        assert!(a.delivered > 0, "{name}: traffic must flow");
    }
}

//! Deterministic scenario execution.
//!
//! Executes an [`ExecPlan`] cycle by cycle: open-loop engines generate
//! traffic per the active phase, the fault controller fires the scripted
//! [`FaultSchedule`](adaptnoc_faults::schedule::FaultSchedule) (with
//! NACK/retry and recovery), and reconfiguration triggers run the
//! pause-and-drain [`RegionReconfig`] protocol. Everything is seeded from
//! the plan, so the same plan + options always produces the same
//! [`ScenarioOutcome`] — byte-identical across thread counts (each run is
//! self-contained) and across telemetry modes (telemetry is
//! observation-only).
//!
//! Measurement follows the open-system convention: `warmup` cycles are
//! discarded, then per-epoch offered/accepted rates, latency quantiles
//! and source-queue depths are sampled. A scenario that reconfigures a
//! region should scope its traffic to regions beforehand — a reconfigured
//! region becomes an isolated subNoC, and cross-region packets still in
//! flight or queued will stall (they show up in the `unroutable` /
//! source-queue numbers rather than crashing the run).

use crate::rules::ExecPlan;
use adaptnoc_core::reconfig::{ReconfigTiming, RegionReconfig};
use adaptnoc_faults::controller::{FaultController, FaultError, RetryPolicy};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::network::{Network, NetworkError};
use adaptnoc_sim::par::StepPool;
use adaptnoc_sim::stats::NetStats;
use adaptnoc_sim::telemetry::TelemetryMode;
use adaptnoc_sim::trace::{TraceBuffer, TraceEvent};
use adaptnoc_topology::chip::{build_chip_spec, mesh_chip};
use adaptnoc_topology::chiplet::chiplet_chip;
use adaptnoc_topology::geom::Rect;
use adaptnoc_topology::plan::BuildError;
use adaptnoc_topology::regions::RegionTopology;
use adaptnoc_workloads::open::OpenLoopEngine;
use std::collections::VecDeque;
use std::fmt;

/// How often (cycles) the runner samples NI source-queue depths.
const QUEUE_SAMPLE_INTERVAL: u64 = 64;

/// Per-engine seed spacing (golden-ratio stride, same idiom as the
/// in-tree RNG's `fork`).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A cooperative cancellation handle for a scenario run.
///
/// Clones share one flag: any clone calling [`cancel`](Self::cancel)
/// makes the running [`run`] return [`RunError::Cancelled`] at its next
/// check point (every `QUEUE_SAMPLE_INTERVAL` cycles and at every
/// epoch boundary), instead of running to the end of the plan. This is
/// what lets a supervisor — Ctrl-C handling in `gen-figures`, a job
/// deadline in the farm daemon — stop a multi-million-cycle run within
/// a bounded number of cycles without killing the thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Options for one scenario run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Load substituted for `load sweep` placeholders. Required when the
    /// plan uses the placeholder.
    pub load: Option<f64>,
    /// Telemetry mode for the network (observation-only; never changes
    /// the outcome).
    pub telemetry: TelemetryMode,
    /// Capacity of an attached packet tracer; 0 disables tracing.
    pub trace_capacity: usize,
    /// Threads for region-parallel stepping (`<= 1` steps serially).
    /// Observation-equivalent: the parallel stepper is byte-identical to
    /// serial, so this only changes wall-clock time, never the outcome.
    pub threads: usize,
    /// Cooperative cancellation: when the token fires, the run stops at
    /// its next sample/epoch boundary with [`RunError::Cancelled`]. The
    /// default token never fires.
    pub cancel: CancelToken,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            load: None,
            telemetry: TelemetryMode::Off,
            trace_capacity: 0,
            threads: 1,
            cancel: CancelToken::new(),
        }
    }
}

/// One measurement epoch of a scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRow {
    /// Cycle at the end of the epoch.
    pub cycle: u64,
    /// Packets offered (entered source queues) this epoch.
    pub offered: u64,
    /// Packets delivered this epoch.
    pub delivered: u64,
    /// Offered load, packets per node per cycle.
    pub offered_rate: f64,
    /// Accepted throughput, packets per node per cycle.
    pub accepted_rate: f64,
    /// Mean total packet latency, cycles.
    pub avg_latency: f64,
    /// Median total packet latency, cycles.
    pub p50: f64,
    /// 99th-percentile total packet latency, cycles.
    pub p99: f64,
    /// Largest sampled sum of NI source-queue depths this epoch.
    pub source_queue: u64,
}

/// Fault-layer counters observed over the whole run (including warmup):
/// what the scripted schedule fired and what the recovery machinery —
/// NACK/retry plus the self-healing escalation ladder — did about it.
/// A supervisor (the farm daemon) surfaces these as job events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Transient link faults fired.
    pub transients_fired: u64,
    /// Permanent link faults fired.
    pub permanent_links_fired: u64,
    /// Router faults fired.
    pub routers_fired: u64,
    /// Packets re-queued for NACK retry.
    pub retries_queued: u64,
    /// Packets dropped (budget exhausted or endpoint disconnected).
    pub dropped: u64,
    /// Completed fault recoveries (strike → recovered configuration).
    pub recoveries: u64,
    /// Escalation-ladder interventions (re-routes + purges + rollbacks).
    pub escalations: u64,
    /// Stall episodes the ladder closed with progress restored.
    pub guard_recoveries: u64,
    /// Flight-recorder dumps rendered for unrecoverable stalls.
    pub dumps: u64,
}

impl FaultSummary {
    fn from_stats(s: &adaptnoc_faults::controller::FaultStats) -> Self {
        FaultSummary {
            transients_fired: s.transients_fired,
            permanent_links_fired: s.permanent_links_fired,
            routers_fired: s.routers_fired,
            retries_queued: s.retries_queued,
            dropped: s.dropped,
            recoveries: s.recoveries.len() as u64,
            escalations: s.guard.interventions(),
            guard_recoveries: s.guard.recoveries,
            dumps: s.guard.dumps,
        }
    }

    /// Whether anything at all happened at the fault layer.
    pub fn is_quiet(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Measured cycles (duration).
    pub cycles: u64,
    /// Packets offered during measurement.
    pub offered: u64,
    /// Packets delivered during measurement.
    pub delivered: u64,
    /// Offered load, packets per node per cycle.
    pub offered_rate: f64,
    /// Accepted throughput, packets per node per cycle.
    pub accepted_rate: f64,
    /// Mean total packet latency, cycles.
    pub avg_latency: f64,
    /// Median total packet latency.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Largest sampled sum of NI source-queue depths (whole run,
    /// including warmup).
    pub max_source_queue: u64,
    /// Source-queue depth at the end of the run.
    pub end_source_queue: u64,
    /// Packets dropped (retry budget exhausted / disconnected endpoints).
    pub drops: u64,
    /// Fault-layer counters (schedule fires, retries, recoveries,
    /// escalation-ladder interventions) over the whole run.
    pub faults: FaultSummary,
    /// Per-epoch measurements.
    pub epochs: Vec<EpochRow>,
    /// Traced events, when [`RunOptions::trace_capacity`] was non-zero.
    pub trace: Vec<TraceEvent>,
}

/// A scenario execution error.
#[derive(Debug)]
pub enum RunError {
    /// Chip spec construction failed.
    Build(BuildError),
    /// The simulator rejected an operation.
    Network(NetworkError),
    /// The fault controller failed.
    Fault(FaultError),
    /// The plan needs a sweep load but none was provided.
    MissingLoad,
    /// The run was cancelled through [`RunOptions::cancel`] before it
    /// finished. Nothing about the simulation is preserved; re-running
    /// the same plan from scratch reproduces the uncancelled outcome.
    Cancelled,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Build(e) => write!(f, "chip build failed: {e}"),
            RunError::Network(e) => write!(f, "network error: {e}"),
            RunError::Fault(e) => write!(f, "fault controller error: {e}"),
            RunError::MissingLoad => {
                f.write_str("plan uses `load sweep` but RunOptions.load is None")
            }
            RunError::Cancelled => f.write_str("scenario run cancelled"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<BuildError> for RunError {
    fn from(e: BuildError) -> Self {
        RunError::Build(e)
    }
}

impl From<NetworkError> for RunError {
    fn from(e: NetworkError) -> Self {
        RunError::Network(e)
    }
}

impl From<FaultError> for RunError {
    fn from(e: FaultError) -> Self {
        RunError::Fault(e)
    }
}

fn source_queue_sum(net: &Network, tiles: usize) -> u64 {
    (0..tiles)
        .map(|n| net.ni_queue_len(adaptnoc_sim::ids::NodeId(n as u16)) as u64)
        .sum()
}

/// Executes a compiled scenario.
///
/// # Errors
///
/// Returns [`RunError`] when the chip cannot be built, the plan needs a
/// sweep load that was not provided, or the fault controller reports an
/// unrecoverable error.
pub fn run(plan: &ExecPlan, opts: &RunOptions) -> Result<ScenarioOutcome, RunError> {
    if plan.uses_sweep_load() && opts.load.is_none() {
        return Err(RunError::MissingLoad);
    }
    let cfg = SimConfig::baseline();
    let grid = plan.grid;
    let tiles = grid.tiles();
    let full = Rect::new(0, 0, grid.width, grid.height);

    // A chiplet scenario runs on the hierarchical fabric; everything
    // else on the flat whole-grid mesh. The compiler already rejected
    // recovery-triggering events on fabrics, so the fault controller's
    // rebuild path (which assumes a mesh) can never fire here.
    let spec = match &plan.fabric {
        Some(cc) => chiplet_chip(cc, &cfg)?,
        None => mesh_chip(grid, &cfg)?,
    };
    let mut net = Network::new(spec, cfg.clone())?;
    net.set_telemetry_mode(opts.telemetry);
    if opts.trace_capacity > 0 {
        net.set_tracer(Some(TraceBuffer::all(opts.trace_capacity)));
    }

    let mut fc = FaultController::new(
        plan.faults.clone(),
        RetryPolicy::default(),
        grid,
        full,
        cfg.clone(),
        ReconfigTiming::default(),
    );

    // Engines are created on first use of a source scope and keep their
    // identity (and RNG stream) across phase switches for that scope.
    let mut engines: Vec<OpenLoopEngine> = Vec::new();
    let mut next_traffic = 0usize;
    let mut next_reconfig = 0usize;
    let mut active_reconfig: Option<RegionReconfig> = None;
    let mut queued_reconfigs: VecDeque<crate::rules::ReconfigEvent> = VecDeque::new();

    let mut pool = (opts.threads > 1).then(|| StepPool::new(opts.threads));
    let total = plan.total_cycles();
    let mut acc = NetStats::default();
    let mut epochs = Vec::new();
    let mut max_queue = 0u64;
    let mut epoch_queue = 0u64;
    let mut measured_cycles = 0u64;

    for cycle in 0..total {
        // 1. Phase switches scheduled for this cycle.
        while next_traffic < plan.traffic.len() && plan.traffic[next_traffic].at <= cycle {
            let ev = &plan.traffic[next_traffic];
            next_traffic += 1;
            let mut spec = ev.spec;
            if ev.sweep_load {
                spec.rate = opts.load.unwrap_or(0.0);
            }
            match engines.iter_mut().find(|e| e.rect() == ev.rect) {
                Some(e) => e.set_spec(spec),
                None => {
                    let seed = plan
                        .seed
                        .wrapping_add(SEED_STRIDE.wrapping_mul(engines.len() as u64 + 1));
                    engines.push(OpenLoopEngine::new(grid, ev.rect, spec, seed));
                }
            }
        }

        // 2. Reconfiguration triggers (run one protocol at a time; a
        // trigger firing while another drain is active queues behind it).
        while next_reconfig < plan.reconfigs.len() && plan.reconfigs[next_reconfig].at <= cycle {
            queued_reconfigs.push_back(plan.reconfigs[next_reconfig]);
            next_reconfig += 1;
        }
        if active_reconfig.is_none() {
            if let Some(ev) = queued_reconfigs.pop_front() {
                let target = build_chip_spec(grid, &[RegionTopology::new(ev.rect, ev.kind)], &cfg)?;
                active_reconfig = Some(RegionReconfig::start(
                    &net,
                    &grid,
                    ev.rect,
                    target,
                    None, // slow path: pause, drain, switch
                    ReconfigTiming::default(),
                ));
            }
        }

        // 3. Traffic generation and one simulator cycle.
        for e in engines.iter_mut() {
            e.tick(&mut net);
        }
        match pool.as_mut() {
            Some(pool) => net.step_parallel(pool),
            None => net.step(),
        }
        fc.tick(&mut net)?;
        if let Some(rc) = active_reconfig.as_mut() {
            if rc.tick(&mut net, &grid)? {
                active_reconfig = None;
            }
        }
        net.drain_delivered();

        // 4. Sampling and epoch accounting. The sample boundary doubles
        // as the cooperative-cancellation check point: one atomic load
        // every QUEUE_SAMPLE_INTERVAL cycles bounds how long a cancelled
        // run keeps simulating without touching the hot loop.
        if cycle.is_multiple_of(QUEUE_SAMPLE_INTERVAL) {
            if opts.cancel.is_cancelled() {
                return Err(RunError::Cancelled);
            }
            let q = source_queue_sum(&net, tiles);
            max_queue = max_queue.max(q);
            epoch_queue = epoch_queue.max(q);
        }
        let done = cycle + 1;
        if done == plan.warmup {
            // Discard the warmup epoch; measurement starts clean.
            let _ = net.take_epoch();
            epoch_queue = 0;
        } else if done > plan.warmup
            && ((done - plan.warmup).is_multiple_of(plan.epoch) || done == total)
        {
            let report = net.take_epoch();
            let s = &report.stats;
            let cycles = s.cycles.max(1);
            epochs.push(EpochRow {
                cycle: done,
                offered: s.packets_offered,
                delivered: s.packets,
                offered_rate: s.packets_offered as f64 / (cycles as f64 * tiles as f64),
                accepted_rate: s.packets as f64 / (cycles as f64 * tiles as f64),
                avg_latency: if s.packets == 0 {
                    0.0
                } else {
                    s.latency_hist.sum() as f64 / s.packets as f64
                },
                p50: s.p50_latency(),
                p99: s.p99_latency(),
                source_queue: epoch_queue,
            });
            measured_cycles += s.cycles;
            acc.accumulate(s);
            epoch_queue = 0;
            if opts.cancel.is_cancelled() {
                return Err(RunError::Cancelled);
            }
        }
    }

    let end_queue = source_queue_sum(&net, tiles);
    let cycles = measured_cycles.max(1);
    Ok(ScenarioOutcome {
        cycles: measured_cycles,
        offered: acc.packets_offered,
        delivered: acc.packets,
        offered_rate: acc.packets_offered as f64 / (cycles as f64 * tiles as f64),
        accepted_rate: acc.packets as f64 / (cycles as f64 * tiles as f64),
        avg_latency: if acc.packets == 0 {
            0.0
        } else {
            acc.latency_hist.sum() as f64 / acc.packets as f64
        },
        p50: acc.p50_latency(),
        p95: acc.p95_latency(),
        p99: acc.p99_latency(),
        p999: acc.p999_latency(),
        max_source_queue: max_queue,
        end_source_queue: end_queue,
        drops: acc.drops,
        faults: FaultSummary::from_stats(fc.stats()),
        epochs,
        trace: net
            .tracer()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::rules::compile;

    fn run_src(src: &str, opts: &RunOptions) -> ScenarioOutcome {
        run(&compile(&parse(src).unwrap()).unwrap(), opts).unwrap()
    }

    #[test]
    fn light_uniform_scenario_delivers_what_it_offers() {
        let out = run_src(
            "grid 4 4; warmup 2K; duration 10K; epoch 2K;\n\
             t=0 uniform load 0.05;",
            &RunOptions::default(),
        );
        assert_eq!(out.epochs.len(), 5);
        assert!(out.offered > 0);
        let ratio = out.accepted_rate / out.offered_rate;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "below saturation accepted ~= offered ({ratio})"
        );
        assert!(out.p99 >= out.p50);
    }

    #[test]
    fn overload_separates_offered_from_accepted() {
        let out = run_src(
            "grid 4 4; warmup 2K; duration 10K; epoch 2K;\n\
             t=0 uniform load 0.8;",
            &RunOptions::default(),
        );
        assert!(
            out.accepted_rate < out.offered_rate * 0.8,
            "0.8 load must saturate a 4x4 mesh: offered {} accepted {}",
            out.offered_rate,
            out.accepted_rate
        );
        assert!(out.max_source_queue > 100, "queues back up in overload");
        assert!(out.end_source_queue > 0);
    }

    #[test]
    fn scripted_fault_fires_and_run_survives() {
        let out = run_src(
            "grid 4 4; warmup 1K; duration 8K; epoch 2K;\n\
             t=0 uniform load 0.05;\n\
             t=3K kill router 5;",
            &RunOptions::default(),
        );
        assert!(out.delivered > 0);
    }

    #[test]
    fn reconfigure_trigger_completes() {
        let out = run_src(
            "grid 4 4; warmup 1K; duration 12K; epoch 3K;\n\
             region A 0 0 4 2; region B 0 2 4 2;\n\
             t=0 uniform load 0.05 in region A;\n\
             t=0 uniform load 0.05 in region B;\n\
             t=4K reconfigure region B to cmesh;",
            &RunOptions::default(),
        );
        assert!(out.delivered > 0);
    }

    #[test]
    fn sweep_placeholder_needs_a_load() {
        let plan =
            compile(&parse("sweep load 0.1 to 0.2 step 0.1; t=0 uniform load sweep;").unwrap())
                .unwrap();
        assert!(matches!(
            run(&plan, &RunOptions::default()),
            Err(RunError::MissingLoad)
        ));
    }

    #[test]
    fn runs_are_deterministic_and_telemetry_neutral() {
        let src = "grid 4 4; warmup 1K; duration 6K; epoch 2K;\n\
                   t=0 zipf 1.1 load 0.2 poisson;\n\
                   t=2K glitch link 1 -> 2 for 500;";
        let base = run_src(src, &RunOptions::default());
        let again = run_src(src, &RunOptions::default());
        assert_eq!(base, again, "same plan, same outcome");
        let strict = run_src(
            src,
            &RunOptions {
                telemetry: TelemetryMode::Strict,
                ..RunOptions::default()
            },
        );
        assert_eq!(base, strict, "telemetry is observation-only");
    }

    #[test]
    fn pre_cancelled_run_stops_immediately() {
        let plan = compile(
            &parse("grid 4 4; warmup 1K; duration 1M; epoch 1K; t=0 uniform load 0.05;").unwrap(),
        )
        .unwrap();
        let opts = RunOptions::default();
        opts.cancel.cancel();
        // A megacycle plan returns at the first check point instead of
        // simulating to the end — this completes in microseconds.
        assert!(matches!(run(&plan, &opts), Err(RunError::Cancelled)));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn fault_summary_reports_scripted_fires() {
        let out = run_src(
            "grid 4 4; warmup 1K; duration 8K; epoch 2K;\n\
             t=0 uniform load 0.05;\n\
             t=3K glitch link 1 -> 2 for 500;",
            &RunOptions::default(),
        );
        assert_eq!(out.faults.transients_fired, 1);
        let quiet = run_src(
            "grid 4 4; warmup 1K; duration 4K; epoch 2K; t=0 uniform load 0.05;",
            &RunOptions::default(),
        );
        assert!(quiet.faults.is_quiet());
    }

    #[test]
    fn tracing_captures_events() {
        let out = run_src(
            "grid 4 4; warmup 100; duration 400; epoch 200; t=0 uniform load 0.05;",
            &RunOptions {
                trace_capacity: 4096,
                ..RunOptions::default()
            },
        );
        assert!(!out.trace.is_empty());
    }
}

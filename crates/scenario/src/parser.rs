//! Recursive-descent parser for scenario files.
//!
//! ```text
//! scenario  := { stmt }
//! stmt      := directive ';' | event ';'
//! directive := 'grid' INT INT
//!            | 'chiplet' INT INT INT INT            (chips_x chips_y chip_w chip_h)
//!              [ 'latency' INT ] [ 'links' INT ]
//!            | 'seed' INT
//!            | 'warmup' TIME | 'duration' TIME | 'epoch' TIME
//!            | 'region' NAME INT INT INT INT        (x y w h)
//!            | 'sweep' 'load' NUM 'to' NUM 'step' NUM
//! event     := 't' '=' TIME action
//! action    := traffic | fault | reconfig
//! traffic   := pattern ('load'|'rate') (NUM | 'sweep')
//!              [ 'poisson' | 'bernoulli' | 'mmpp' NUM NUM NUM ]
//!              [ 'ramp' 'to' NUM 'over' TIME
//!              | 'diurnal' NUM 'period' TIME
//!              | 'burst' NUM 'every' TIME 'for' TIME ]
//!              [ 'in' 'region' NAME ]
//! pattern   := 'uniform' | 'transpose' | 'neighbor' | 'zipf' NUM
//!            | 'hotspot' ('node' INT | 'region' NAME)
//! fault     := 'kill' 'router' INT
//!            | 'kill' 'link' INT '->' INT
//!            | 'glitch' 'link' INT '->' INT 'for' TIME
//! reconfig  := 'reconfigure' 'region' NAME [ 'to' TOPO ]
//! TOPO      := 'mesh' | 'cmesh' | 'torus' | 'tree'
//! TIME      := INT        (with optional K/M/G suffix, applied by the lexer)
//! NUM       := INT | FLOAT
//! ```
//!
//! `rate` is accepted as an alias for `load` (canonical form prints
//! `load`); a missing reconfigure target defaults to `mesh`. The
//! `chiplet` directive also sets the grid to its tile footprint, so it
//! needs no separate `grid` line.

use crate::ast::{
    Action, ArrivalAst, Event, FabricAst, LoadAst, PatternAst, Scenario, ShapeAst, Sweep,
    TrafficCmd,
};
use crate::lexer::{lex, LexError, Spanned, Token};
use adaptnoc_topology::geom::Rect;
use adaptnoc_topology::regions::TopologyKind;
use std::fmt;

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based source line (0 for end-of-input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "end of input: {}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |s| s.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: if self.pos < self.toks.len() {
                self.line()
            } else {
                0
            },
        }
    }

    fn next(&mut self, what: &str) -> Result<Token, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|s| s.tok.clone())
            .ok_or_else(|| self.err(format!("expected {what}")))?;
        self.pos += 1;
        Ok(t)
    }

    /// Consumes the next token if it is the identifier `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(match self.peek() {
                Some(t) => self.err(format!("expected `{kw}`, found {t}")),
                None => self.err(format!("expected `{kw}`")),
            })
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), ParseError> {
        match self.next(&format!("{tok}"))? {
            t if t == tok => Ok(()),
            t => Err(self.err_prev(format!("expected {tok}, found {t}"))),
        }
    }

    /// Like [`Parser::err`] but anchored to the token just consumed.
    fn err_prev(&self, msg: String) -> ParseError {
        ParseError {
            msg,
            line: self
                .toks
                .get(self.pos.saturating_sub(1))
                .map_or(0, |s| s.line),
        }
    }

    fn name(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next(what)? {
            Token::Ident(s) => Ok(s),
            t => Err(self.err_prev(format!("expected {what}, found {t}"))),
        }
    }

    fn int(&mut self, what: &str) -> Result<u64, ParseError> {
        match self.next(what)? {
            Token::Int(n) => Ok(n),
            t => Err(self.err_prev(format!("expected {what}, found {t}"))),
        }
    }

    fn num(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.next(what)? {
            Token::Int(n) => Ok(n as f64),
            Token::Float(x) => Ok(x),
            t => Err(self.err_prev(format!("expected {what}, found {t}"))),
        }
    }

    fn small(&mut self, what: &str, max: u64) -> Result<u64, ParseError> {
        let v = self.int(what)?;
        if v > max {
            return Err(self.err_prev(format!("{what} {v} exceeds {max}")));
        }
        Ok(v)
    }

    fn pattern(&mut self) -> Result<PatternAst, ParseError> {
        let kw = self.name("a traffic pattern")?;
        Ok(match kw.as_str() {
            "uniform" => PatternAst::Uniform,
            "transpose" => PatternAst::Transpose,
            "neighbor" => PatternAst::Neighbor,
            "zipf" => PatternAst::Zipf(self.num("a zipf exponent")?),
            "hotspot" => {
                if self.eat_kw("node") {
                    PatternAst::HotspotNode(self.small("a node id", u16::MAX as u64)? as u16)
                } else if self.eat_kw("region") {
                    PatternAst::HotspotRegion(self.name("a region name")?)
                } else {
                    return Err(self.err("expected `node` or `region` after `hotspot`"));
                }
            }
            other => return Err(self.err_prev(format!("unknown traffic pattern `{other}`"))),
        })
    }

    fn traffic(&mut self) -> Result<TrafficCmd, ParseError> {
        let pattern = self.pattern()?;
        if !self.eat_kw("load") && !self.eat_kw("rate") {
            return Err(self.err("expected `load` after the traffic pattern"));
        }
        let load = if self.eat_kw("sweep") {
            LoadAst::Sweep
        } else {
            LoadAst::Fixed(self.num("a load value")?)
        };
        let arrival = if self.eat_kw("poisson") {
            ArrivalAst::Poisson
        } else if self.eat_kw("mmpp") {
            ArrivalAst::Mmpp {
                burst: self.num("an mmpp burst factor")?,
                p_on: self.num("an mmpp on-probability")?,
                p_off: self.num("an mmpp off-probability")?,
            }
        } else {
            self.eat_kw("bernoulli");
            ArrivalAst::Bernoulli
        };
        let shape = if self.eat_kw("ramp") {
            self.expect_kw("to")?;
            let rate = self.num("a target rate")?;
            self.expect_kw("over")?;
            ShapeAst::RampTo {
                rate,
                over: self.int("a ramp duration")?,
            }
        } else if self.eat_kw("diurnal") {
            let amplitude = self.num("a diurnal amplitude")?;
            self.expect_kw("period")?;
            ShapeAst::Diurnal {
                amplitude,
                period: self.int("a diurnal period")?,
            }
        } else if self.eat_kw("burst") {
            let factor = self.num("a burst factor")?;
            self.expect_kw("every")?;
            let every = self.int("a burst interval")?;
            self.expect_kw("for")?;
            ShapeAst::Burst {
                factor,
                every,
                len: self.int("a burst length")?,
            }
        } else {
            ShapeAst::Constant
        };
        let region = if self.eat_kw("in") {
            self.expect_kw("region")?;
            Some(self.name("a region name")?)
        } else {
            None
        };
        Ok(TrafficCmd {
            pattern,
            load,
            arrival,
            shape,
            region,
        })
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        if self.eat_kw("kill") {
            if self.eat_kw("router") {
                return Ok(Action::KillRouter(
                    self.small("a router id", u16::MAX as u64)? as u16,
                ));
            }
            self.expect_kw("link")?;
            let from = self.small("a router id", u16::MAX as u64)? as u16;
            self.expect(Token::Arrow)?;
            let to = self.small("a router id", u16::MAX as u64)? as u16;
            return Ok(Action::KillLink { from, to });
        }
        if self.eat_kw("glitch") {
            self.expect_kw("link")?;
            let from = self.small("a router id", u16::MAX as u64)? as u16;
            self.expect(Token::Arrow)?;
            let to = self.small("a router id", u16::MAX as u64)? as u16;
            self.expect_kw("for")?;
            let duration = self.int("an outage duration")?;
            return Ok(Action::GlitchLink { from, to, duration });
        }
        if self.eat_kw("reconfigure") {
            self.expect_kw("region")?;
            let region = self.name("a region name")?;
            let to = if self.eat_kw("to") {
                match self.name("a topology")?.as_str() {
                    "mesh" => TopologyKind::Mesh,
                    "cmesh" => TopologyKind::Cmesh,
                    "torus" => TopologyKind::Torus,
                    "tree" => TopologyKind::Tree,
                    other => {
                        return Err(self.err_prev(format!("unknown topology `{other}`")));
                    }
                }
            } else {
                TopologyKind::Mesh
            };
            return Ok(Action::Reconfigure { region, to });
        }
        Ok(Action::Traffic(self.traffic()?))
    }

    fn parse(&mut self) -> Result<Scenario, ParseError> {
        let mut sc = Scenario::default();
        while self.peek().is_some() {
            if self.eat_kw("grid") {
                let w = self.small("a grid width", 64)?;
                let h = self.small("a grid height", 64)?;
                if w == 0 || h == 0 {
                    return Err(self.err_prev("grid dimensions must be positive".into()));
                }
                sc.grid = (w as u8, h as u8);
            } else if self.eat_kw("chiplet") {
                let defaults = FabricAst::default();
                let mut fb = FabricAst {
                    chips_x: self.small("a chip-grid width", 8)? as u8,
                    chips_y: self.small("a chip-grid height", 8)? as u8,
                    chip_w: self.small("a chip tile width", 16)? as u8,
                    chip_h: self.small("a chip tile height", 16)? as u8,
                    ..defaults
                };
                if fb.chips_x == 0 || fb.chips_y == 0 || fb.chip_w == 0 || fb.chip_h == 0 {
                    return Err(self.err_prev("chiplet dimensions must be positive".into()));
                }
                if self.eat_kw("latency") {
                    fb.link_latency = self.small("an inter-chip link latency", 255)? as u8;
                    if fb.link_latency == 0 {
                        return Err(self.err_prev("link latency must be positive".into()));
                    }
                }
                if self.eat_kw("links") {
                    fb.links_per_edge = self.small("a links-per-edge count", 16)? as u8;
                    if fb.links_per_edge == 0 {
                        return Err(self.err_prev("links per edge must be positive".into()));
                    }
                }
                let gw = fb.chips_x as u64 * fb.chip_w as u64;
                let gh = fb.chips_y as u64 * fb.chip_h as u64;
                if gw > 64 || gh > 64 {
                    return Err(self.err_prev(format!("chiplet footprint {gw}x{gh} exceeds 64x64")));
                }
                sc.grid = (gw as u8, gh as u8);
                sc.fabric = Some(fb);
            } else if self.eat_kw("seed") {
                sc.seed = self.int("a seed")?;
            } else if self.eat_kw("warmup") {
                sc.warmup = self.int("a warmup length")?;
            } else if self.eat_kw("duration") {
                sc.duration = self.int("a duration")?;
            } else if self.eat_kw("epoch") {
                sc.epoch = self.int("an epoch length")?;
            } else if self.eat_kw("region") {
                let name = self.name("a region name")?;
                let x = self.small("a region x", 63)? as u8;
                let y = self.small("a region y", 63)? as u8;
                let w = self.small("a region width", 64)? as u8;
                let h = self.small("a region height", 64)? as u8;
                sc.regions.push((name, Rect::new(x, y, w, h)));
            } else if self.eat_kw("sweep") {
                self.expect_kw("load")?;
                let from = self.num("a sweep start")?;
                self.expect_kw("to")?;
                let to = self.num("a sweep end")?;
                self.expect_kw("step")?;
                let step = self.num("a sweep step")?;
                sc.sweep = Some(Sweep { from, to, step });
            } else if self.eat_kw("t") {
                self.expect(Token::Eq)?;
                let at = self.int("an event time")?;
                let action = self.action()?;
                sc.events.push(Event { at, action });
            } else {
                return Err(match self.peek() {
                    Some(t) => self.err(format!("expected a directive or `t=TIME`, found {t}")),
                    None => self.err("expected a directive or `t=TIME`"),
                });
            }
            self.expect(Token::Semi)?;
        }
        Ok(sc)
    }
}

/// Parses scenario text into a [`Scenario`].
///
/// # Errors
///
/// Returns [`ParseError`] (with a source line) on lexical or syntactic
/// problems. Semantic checks (region names, grid fits, sweep usage) live
/// in [`crate::rules::compile`].
pub fn parse(src: &str) -> Result<Scenario, ParseError> {
    Parser {
        toks: lex(src)?,
        pos: 0,
    }
    .parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_example_parses() {
        let sc = parse(
            "region B 4 4 4 4;\n\
             t=0 uniform load 0.3;\n\
             t=2M hotspot region B rate 0.9;\n\
             t=4M kill router 12;\n\
             t=5M reconfigure region B;\n",
        )
        .unwrap();
        assert_eq!(sc.events.len(), 4);
        assert_eq!(
            sc.events[1].action,
            Action::Traffic(TrafficCmd {
                pattern: PatternAst::HotspotRegion("B".into()),
                load: LoadAst::Fixed(0.9),
                arrival: ArrivalAst::Bernoulli,
                shape: ShapeAst::Constant,
                region: None,
            })
        );
        assert_eq!(sc.events[2].at, 4_000_000);
        assert_eq!(
            sc.events[3].action,
            Action::Reconfigure {
                region: "B".into(),
                to: TopologyKind::Mesh,
            }
        );
    }

    #[test]
    fn full_traffic_clause() {
        let sc = parse(
            "t=10K zipf 1.2 load sweep mmpp 4 0.01 0.05 \
             burst 2 every 50K for 5K in region A;",
        )
        .unwrap();
        let Action::Traffic(t) = &sc.events[0].action else {
            panic!("not traffic");
        };
        assert_eq!(t.pattern, PatternAst::Zipf(1.2));
        assert_eq!(t.load, LoadAst::Sweep);
        assert_eq!(
            t.arrival,
            ArrivalAst::Mmpp {
                burst: 4.0,
                p_on: 0.01,
                p_off: 0.05
            }
        );
        assert_eq!(
            t.shape,
            ShapeAst::Burst {
                factor: 2.0,
                every: 50_000,
                len: 5_000
            }
        );
        assert_eq!(t.region.as_deref(), Some("A"));
    }

    #[test]
    fn directives_override_defaults() {
        let sc = parse("grid 4 4; seed 9; warmup 1K; duration 5K; epoch 500;").unwrap();
        assert_eq!(sc.grid, (4, 4));
        assert_eq!(sc.seed, 9);
        assert_eq!(sc.warmup, 1_000);
        assert_eq!(sc.duration, 5_000);
        assert_eq!(sc.epoch, 500);
    }

    #[test]
    fn errors_point_at_lines() {
        let e = parse("seed 1;\nt=0 uniform speed 0.3;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("load"), "{}", e.msg);
        assert!(parse("t=0 kill link 3 7;").is_err(), "missing arrow");
        assert!(parse("grid 0 4;").is_err(), "zero grid");
        assert!(parse("t=0 uniform load 0.3").is_err(), "missing semicolon");
    }

    #[test]
    fn chiplet_directive_sets_fabric_and_grid() {
        let sc = parse("chiplet 2 2 4 4 latency 6 links 1;\nt=0 uniform load 0.1;").unwrap();
        let fb = sc.fabric.expect("fabric set");
        assert_eq!((fb.chips_x, fb.chips_y, fb.chip_w, fb.chip_h), (2, 2, 4, 4));
        assert_eq!(fb.link_latency, 6);
        assert_eq!(fb.links_per_edge, 1);
        assert_eq!(sc.grid, (8, 8), "grid derived from the fabric footprint");
        // Canonical form round-trips.
        let sc2 = parse(&sc.to_string()).unwrap();
        assert_eq!(sc, sc2);
        // Latency/links are optional and default like FabricAst.
        let sc = parse("chiplet 2 1 4 4;").unwrap();
        let fb = sc.fabric.unwrap();
        assert_eq!(fb.link_latency, FabricAst::default().link_latency);
        assert_eq!(fb.links_per_edge, FabricAst::default().links_per_edge);
        // Footprint must stay on the u8 grid.
        assert!(parse("chiplet 8 8 16 16;").is_err(), "128x128 footprint");
        assert!(parse("chiplet 0 2 4 4;").is_err(), "zero chips");
    }

    #[test]
    fn round_trip_of_canonical_form() {
        let src = "grid 6 6; seed 3; region A 0 0 3 6; region B 3 0 3 6;\n\
                   sweep load 0.05 to 0.5 step 0.05;\n\
                   t=0 uniform load sweep poisson;\n\
                   t=50K hotspot region B load 0.8 ramp to 1.5 over 20K;\n\
                   t=80K glitch link 3 -> 9 for 2K;\n\
                   t=90K reconfigure region A to cmesh;";
        let sc = parse(src).unwrap();
        let sc2 = parse(&sc.to_string()).unwrap();
        assert_eq!(sc, sc2);
    }
}

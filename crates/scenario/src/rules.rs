//! Semantic compilation: [`Scenario`] → [`ExecPlan`].
//!
//! The parser only checks syntax; this pass resolves names and checks
//! meaning — region references, rects against the grid, link endpoints
//! against the chip's actual channels (producing the [`FaultSchedule`]
//! the fault controller consumes), parameter ranges, and sweep-placeholder
//! usage. The output is plain resolved data the runner (or a hand-written
//! test) can execute directly; a hand-built `ExecPlan` with the same
//! contents behaves identically to a compiled one, which is what the
//! fault-trace equivalence proptest pins down.

use crate::ast::{Action, ArrivalAst, LoadAst, PatternAst, Scenario, ShapeAst, Sweep, TrafficCmd};
use adaptnoc_faults::schedule::{FaultEvent, FaultKind, FaultSchedule};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{NodeId, RouterId};
use adaptnoc_topology::chip::mesh_chip;
use adaptnoc_topology::chiplet::{chiplet_chip, ChipletConfig};
use adaptnoc_topology::geom::{Grid, Rect};
use adaptnoc_topology::regions::TopologyKind;
use adaptnoc_workloads::open::{Arrival, DestPattern, RateShape, TrafficSpec};
use std::fmt;

/// A semantic error found while compiling a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What is wrong.
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CompileError {}

fn err(msg: impl Into<String>) -> CompileError {
    CompileError { msg: msg.into() }
}

/// A resolved traffic phase: at `at`, the engine driving `rect` switches
/// to `spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficEvent {
    /// Firing cycle.
    pub at: u64,
    /// Source scope (the engine's region).
    pub rect: Rect,
    /// The traffic to generate. When `sweep_load` is set the rate is a
    /// placeholder the runner overrides with the campaign point's load.
    pub spec: TrafficSpec,
    /// Whether `spec.rate` is the `load sweep` placeholder.
    pub sweep_load: bool,
}

/// A resolved reconfiguration trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// Firing cycle.
    pub at: u64,
    /// Region to reconfigure.
    pub rect: Rect,
    /// Target subNoC topology.
    pub kind: TopologyKind,
}

/// A compiled, fully resolved scenario ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// The chip grid.
    pub grid: Grid,
    /// Master seed.
    pub seed: u64,
    /// Unmeasured lead-in cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub duration: u64,
    /// Epoch length, cycles.
    pub epoch: u64,
    /// Named regions (resolved rects, declaration order).
    pub regions: Vec<(String, Rect)>,
    /// Chiplet fabric, when the scenario declared one. The runner then
    /// builds the network from [`chiplet_chip`] instead of a flat mesh;
    /// `grid` always equals the fabric's tile footprint.
    pub fabric: Option<ChipletConfig>,
    /// Scripted faults, routed through the fault controller.
    pub faults: FaultSchedule,
    /// Traffic phases, sorted by firing cycle (stable).
    pub traffic: Vec<TrafficEvent>,
    /// Reconfiguration triggers, sorted by firing cycle (stable).
    pub reconfigs: Vec<ReconfigEvent>,
    /// The load sweep, if declared.
    pub sweep: Option<Sweep>,
}

impl ExecPlan {
    /// Whether any traffic phase uses the `load sweep` placeholder (and
    /// therefore needs a per-point load from the campaign).
    pub fn uses_sweep_load(&self) -> bool {
        self.traffic.iter().any(|t| t.sweep_load)
    }

    /// Total run length (warmup + measured duration).
    pub fn total_cycles(&self) -> u64 {
        self.warmup + self.duration
    }
}

fn check_prob(v: f64, what: &str) -> Result<(), CompileError> {
    if !(0.0..=1.0).contains(&v) {
        return Err(err(format!("{what} {v} must be in [0, 1]")));
    }
    Ok(())
}

fn check_rate(v: f64, what: &str) -> Result<(), CompileError> {
    if !v.is_finite() || v < 0.0 {
        return Err(err(format!("{what} {v} must be finite and non-negative")));
    }
    Ok(())
}

struct Compiler<'a> {
    sc: &'a Scenario,
    grid: Grid,
    full: Rect,
}

impl Compiler<'_> {
    fn region(&self, name: &str) -> Result<Rect, CompileError> {
        self.sc
            .regions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .ok_or_else(|| err(format!("unknown region `{name}`")))
    }

    fn traffic(&self, at: u64, t: &TrafficCmd) -> Result<TrafficEvent, CompileError> {
        let rect = match &t.region {
            Some(name) => self.region(name)?,
            None => self.full,
        };
        let dest = match &t.pattern {
            PatternAst::Uniform => DestPattern::Uniform,
            PatternAst::Transpose => DestPattern::Transpose,
            PatternAst::Neighbor => DestPattern::Neighbor,
            PatternAst::Zipf(s) => {
                check_rate(*s, "zipf exponent")?;
                DestPattern::Zipf { s: *s }
            }
            PatternAst::HotspotNode(n) => {
                if *n as usize >= self.grid.tiles() {
                    return Err(err(format!("hotspot node {n} is outside the grid")));
                }
                DestPattern::Hotspot(NodeId(*n))
            }
            PatternAst::HotspotRegion(name) => DestPattern::HotspotRegion(self.region(name)?),
        };
        let (rate, sweep_load) = match t.load {
            LoadAst::Fixed(v) => {
                check_rate(v, "load")?;
                (v, false)
            }
            LoadAst::Sweep => {
                if self.sc.sweep.is_none() {
                    return Err(err("`load sweep` used without a `sweep load` directive"));
                }
                (0.0, true)
            }
        };
        let arrival = match t.arrival {
            ArrivalAst::Bernoulli => Arrival::Bernoulli,
            ArrivalAst::Poisson => Arrival::Poisson,
            ArrivalAst::Mmpp { burst, p_on, p_off } => {
                check_rate(burst, "mmpp burst factor")?;
                check_prob(p_on, "mmpp on-probability")?;
                check_prob(p_off, "mmpp off-probability")?;
                Arrival::Mmpp { burst, p_on, p_off }
            }
        };
        let shape = match t.shape {
            ShapeAst::Constant => RateShape::Constant,
            ShapeAst::RampTo { rate, over } => {
                check_rate(rate, "ramp target")?;
                RateShape::RampTo { rate, over }
            }
            ShapeAst::Diurnal { amplitude, period } => {
                check_rate(amplitude, "diurnal amplitude")?;
                RateShape::Diurnal { amplitude, period }
            }
            ShapeAst::Burst { factor, every, len } => {
                check_rate(factor, "burst factor")?;
                RateShape::Burst { factor, every, len }
            }
        };
        Ok(TrafficEvent {
            at,
            rect,
            spec: TrafficSpec {
                rate,
                arrival,
                dest,
                shape,
            },
            sweep_load,
        })
    }
}

/// Compiles a parsed scenario into an executable plan.
///
/// # Errors
///
/// Returns [`CompileError`] on unknown regions, rects or ids outside the
/// grid, link endpoints with no channel between them, out-of-range
/// parameters, or a `load sweep` placeholder without a sweep directive.
pub fn compile(sc: &Scenario) -> Result<ExecPlan, CompileError> {
    let grid = Grid::new(sc.grid.0, sc.grid.1);
    let full = Rect::new(0, 0, sc.grid.0, sc.grid.1);
    if sc.duration == 0 {
        return Err(err("duration must be positive"));
    }
    if sc.epoch == 0 {
        return Err(err("epoch must be positive"));
    }
    for (i, (name, rect)) in sc.regions.iter().enumerate() {
        if !rect.fits(&grid) {
            return Err(err(format!("region `{name}` {rect} exceeds the grid")));
        }
        if rect.tiles() == 0 {
            return Err(err(format!("region `{name}` is empty")));
        }
        if sc.regions[..i].iter().any(|(n, _)| n == name) {
            return Err(err(format!("region `{name}` declared twice")));
        }
    }
    if let Some(s) = sc.sweep {
        check_rate(s.from, "sweep start")?;
        check_rate(s.to, "sweep end")?;
        if s.step <= 0.0 || s.points().is_empty() {
            return Err(err("sweep must expand to at least one load point"));
        }
    }

    // A declared fabric fixes the network shape: check the grid matches
    // its footprint and build the chiplet config the runner will use.
    let fabric = match sc.fabric {
        Some(fb) => {
            let cc = ChipletConfig {
                link_latency: fb.link_latency,
                links_per_edge: fb.links_per_edge,
                ..ChipletConfig::new(fb.chips_x, fb.chips_y, fb.chip_w, fb.chip_h)
            };
            cc.validate().map_err(|e| err(e.to_string()))?;
            let fp = cc.grid();
            if (fp.width, fp.height) != (sc.grid.0, sc.grid.1) {
                return Err(err(format!(
                    "grid {}x{} does not match the chiplet footprint {}x{}",
                    sc.grid.0, sc.grid.1, fp.width, fp.height
                )));
            }
            Some(cc)
        }
        None => None,
    };

    // The baseline chip resolves link endpoints to channel keys; this is
    // also the spec the runner starts from. On a chiplet fabric that is
    // the hierarchical spec, so kill/glitch targets can name the
    // inter-chip links themselves.
    let base = match &fabric {
        Some(cc) => chiplet_chip(cc, &SimConfig::baseline()).map_err(|e| err(e.to_string()))?,
        None => mesh_chip(grid, &SimConfig::baseline()).map_err(|e| err(e.to_string()))?,
    };
    let routers = base.routers.len() as u64;
    let link_key = |from: u16, to: u16| {
        base.channels
            .iter()
            .find(|c| c.src.router.0 == from && c.dst.router.0 == to)
            .map(|c| c.key())
            .ok_or_else(|| err(format!("no channel between routers {from} and {to}")))
    };

    let c = Compiler { sc, grid, full };
    let mut faults = Vec::new();
    let mut traffic = Vec::new();
    let mut reconfigs = Vec::new();
    // Permanent faults and reconfiguration both trigger the recovery
    // path, which rebuilds the chip as a (degraded) flat mesh — that
    // would silently clobber a chiplet fabric's inter-chip links, so on
    // fabrics only self-healing transients are allowed.
    let on_fabric = |what: &str| -> CompileError {
        err(format!(
            "{what} is not supported on a chiplet fabric (recovery would \
             rebuild a flat mesh); use `glitch link` for transient SerDes \
             outages"
        ))
    };
    for ev in &sc.events {
        match &ev.action {
            Action::Traffic(t) => traffic.push(c.traffic(ev.at, t)?),
            Action::KillRouter(r) => {
                if fabric.is_some() {
                    return Err(on_fabric("`kill router`"));
                }
                if *r as u64 >= routers {
                    return Err(err(format!("router {r} is outside the grid")));
                }
                faults.push(FaultEvent {
                    at: ev.at,
                    kind: FaultKind::PermanentRouter {
                        router: RouterId(*r),
                    },
                });
            }
            Action::KillLink { from, to } => {
                if fabric.is_some() {
                    return Err(on_fabric("`kill link`"));
                }
                faults.push(FaultEvent {
                    at: ev.at,
                    kind: FaultKind::PermanentLink {
                        key: link_key(*from, *to)?,
                    },
                });
            }
            Action::GlitchLink { from, to, duration } => faults.push(FaultEvent {
                at: ev.at,
                kind: FaultKind::TransientLink {
                    key: link_key(*from, *to)?,
                    duration: *duration,
                },
            }),
            Action::Reconfigure { region, to } => {
                if fabric.is_some() {
                    return Err(on_fabric("`reconfigure`"));
                }
                reconfigs.push(ReconfigEvent {
                    at: ev.at,
                    rect: c.region(region)?,
                    kind: *to,
                });
            }
        }
    }
    traffic.sort_by_key(|t| t.at);
    reconfigs.sort_by_key(|r| r.at);
    Ok(ExecPlan {
        grid,
        seed: sc.seed,
        warmup: sc.warmup,
        duration: sc.duration,
        epoch: sc.epoch,
        regions: sc.regions.clone(),
        fabric,
        faults: FaultSchedule::new(faults),
        traffic,
        reconfigs,
        sweep: sc.sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan(src: &str) -> Result<ExecPlan, CompileError> {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn issue_example_compiles() {
        let p = plan(
            "grid 8 8; region B 4 4 4 4;\n\
             t=0 uniform load 0.3;\n\
             t=20K hotspot region B load 0.9;\n\
             t=40K kill router 12;\n\
             t=50K reconfigure region B to cmesh;",
        )
        .unwrap();
        assert_eq!(p.traffic.len(), 2);
        assert_eq!(p.faults.len(), 1);
        assert_eq!(p.reconfigs.len(), 1);
        assert_eq!(p.reconfigs[0].rect, Rect::new(4, 4, 4, 4));
        assert_eq!(
            p.traffic[1].spec.dest,
            DestPattern::HotspotRegion(Rect::new(4, 4, 4, 4))
        );
        assert!(!p.uses_sweep_load());
    }

    #[test]
    fn link_faults_resolve_to_channel_keys() {
        let p = plan("grid 4 4; t=100 kill link 0 -> 1; t=200 glitch link 5 -> 9 for 1K;").unwrap();
        assert_eq!(p.faults.len(), 2);
        let FaultKind::PermanentLink { key } = p.faults.events()[0].kind else {
            panic!("expected a permanent link fault");
        };
        assert_eq!(key.src.router, RouterId(0));
        assert_eq!(key.dst.router, RouterId(1));
    }

    #[test]
    fn semantic_errors_are_caught() {
        assert!(
            plan("t=0 uniform load 0.3 in region X;").is_err(),
            "bad region"
        );
        assert!(
            plan("grid 4 4; t=0 kill link 0 -> 9;").is_err(),
            "no channel"
        );
        assert!(plan("grid 4 4; t=0 kill router 99;").is_err(), "bad router");
        assert!(plan("t=0 uniform load sweep;").is_err(), "sweep undeclared");
        assert!(plan("grid 4 4; t=0 hotspot node 200 load 0.1;").is_err());
        assert!(
            plan("region A 6 6 4 4; t=0 uniform load 0.1;").is_err(),
            "rect off-grid"
        );
        assert!(plan("duration 0;").is_err());
        assert!(
            plan("t=0 uniform load 0.1 mmpp 4 1.5 0.1;").is_err(),
            "probability out of range"
        );
    }

    #[test]
    fn chiplet_scenarios_compile_against_the_fabric_spec() {
        // Routers 19 (tile (3,2)) and 20 (tile (4,2)) sit on opposite
        // sides of the vertical chip boundary of a 2x2 fabric of 4x4
        // chips — with one link per edge the gateway is the boundary
        // midpoint — so the channel between them only exists in the
        // chiplet spec, as an inter-chip link.
        let p = plan(
            "chiplet 2 2 4 4 latency 6 links 1;\n\
             t=0 uniform load 0.1;\n\
             t=500 glitch link 19 -> 20 for 200;",
        )
        .unwrap();
        let cc = p.fabric.expect("fabric compiled");
        assert_eq!((cc.chips_x, cc.chips_y, cc.chip_w, cc.chip_h), (2, 2, 4, 4));
        assert_eq!(cc.link_latency, 6);
        assert_eq!(cc.links_per_edge, 1);
        assert_eq!(p.faults.len(), 1);
        let FaultKind::TransientLink { key, duration } = p.faults.events()[0].kind else {
            panic!("expected a transient link fault");
        };
        assert_eq!(
            (key.src.router, key.dst.router),
            (RouterId(19), RouterId(20))
        );
        assert_eq!(duration, 200);
        // Link endpoints resolve against the *fabric* spec: a boundary
        // pair with no gateway there has a channel on a plain 8x8 mesh
        // but not on the fabric, so naming it fails.
        assert!(
            plan("chiplet 2 2 4 4 links 1; t=0 glitch link 27 -> 28 for 100;").is_err(),
            "27 -> 28 crosses the boundary away from the gateway"
        );
    }

    #[test]
    fn fabrics_reject_permanent_faults_and_reconfiguration() {
        for bad in [
            "chiplet 2 2 4 4; t=0 kill router 5;",
            "chiplet 2 2 4 4; t=0 kill link 27 -> 28;",
            "chiplet 2 2 4 4; region A 0 0 4 4; t=0 reconfigure region A to torus;",
        ] {
            let e = plan(bad).unwrap_err();
            assert!(e.msg.contains("chiplet fabric"), "{bad}: {}", e.msg);
        }
        // A hand-desynchronised grid is caught even though the parser
        // normally derives it.
        let mut sc = parse("chiplet 2 2 4 4;").unwrap();
        sc.grid = (16, 16);
        let e = compile(&sc).unwrap_err();
        assert!(e.msg.contains("footprint"), "{}", e.msg);
    }

    #[test]
    fn sweep_placeholder_requires_directive_and_flags_plan() {
        let p = plan("sweep load 0.1 to 0.3 step 0.1; t=0 uniform load sweep poisson;").unwrap();
        assert!(p.uses_sweep_load());
        assert_eq!(p.sweep.unwrap().points().len(), 3);
    }
}

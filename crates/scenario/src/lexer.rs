//! Tokenizer for scenario files.
//!
//! The surface syntax is deliberately tiny: identifiers/keywords,
//! non-negative integer and decimal literals, `=`, `;`, `->`, and `#`
//! line comments. Integer literals take an optional decimal magnitude
//! suffix (`K` = 1e3, `M` = 1e6, `G` = 1e9) so event times read like
//! `t=2M` instead of `t=2000000`.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (`uniform`, `region`, `B`, ...).
    Ident(String),
    /// A non-negative integer, magnitude suffix already applied.
    Int(u64),
    /// A non-negative decimal number.
    Float(f64),
    /// `=`
    Eq,
    /// `;`
    Semi,
    /// `->`
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(n) => write!(f, "`{n}`"),
            Token::Float(x) => write!(f, "`{x}`"),
            Token::Eq => f.write_str("`=`"),
            Token::Semi => f.write_str("`;`"),
            Token::Arrow => f.write_str("`->`"),
        }
    }
}

/// A token with the 1-based source line it started on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based source line.
    pub line: usize,
}

/// A lexical error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub msg: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

fn magnitude(c: char) -> Option<u64> {
    match c {
        'K' => Some(1_000),
        'M' => Some(1_000_000),
        'G' => Some(1_000_000_000),
        _ => None,
    }
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`LexError`] on an unexpected character or malformed number.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut it = src.chars().peekable();
    while let Some(&c) = it.peek() {
        match c {
            '\n' => {
                line += 1;
                it.next();
            }
            c if c.is_whitespace() => {
                it.next();
            }
            '#' => {
                for c in it.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '=' => {
                it.next();
                out.push(Spanned {
                    tok: Token::Eq,
                    line,
                });
            }
            ';' => {
                it.next();
                out.push(Spanned {
                    tok: Token::Semi,
                    line,
                });
            }
            '-' => {
                it.next();
                if it.peek() == Some(&'>') {
                    it.next();
                    out.push(Spanned {
                        tok: Token::Arrow,
                        line,
                    });
                } else {
                    return Err(LexError {
                        msg: "expected `->` after `-`".into(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while it.peek().is_some_and(|c| c.is_ascii_digit()) {
                    text.push(it.next().unwrap());
                }
                if it.peek() == Some(&'.') {
                    text.push(it.next().unwrap());
                    if !it.peek().is_some_and(|c| c.is_ascii_digit()) {
                        return Err(LexError {
                            msg: format!("digits must follow `.` in `{text}`"),
                            line,
                        });
                    }
                    while it.peek().is_some_and(|c| c.is_ascii_digit()) {
                        text.push(it.next().unwrap());
                    }
                    let v: f64 = text.parse().map_err(|_| LexError {
                        msg: format!("bad number `{text}`"),
                        line,
                    })?;
                    out.push(Spanned {
                        tok: Token::Float(v),
                        line,
                    });
                } else {
                    let v: u64 = text.parse().map_err(|_| LexError {
                        msg: format!("integer `{text}` out of range"),
                        line,
                    })?;
                    let v = match it.peek().copied().and_then(magnitude) {
                        Some(m) => {
                            it.next();
                            if it.peek().is_some_and(|c| c.is_alphanumeric() || *c == '_') {
                                return Err(LexError {
                                    msg: "magnitude suffix must end the number".into(),
                                    line,
                                });
                            }
                            v.checked_mul(m).ok_or_else(|| LexError {
                                msg: format!("integer `{text}` with suffix out of range"),
                                line,
                            })?
                        }
                        None => v,
                    };
                    out.push(Spanned {
                        tok: Token::Int(v),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while it
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                {
                    text.push(it.next().unwrap());
                }
                out.push(Spanned {
                    tok: Token::Ident(text),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character `{other}`"),
                    line,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_stream() {
        assert_eq!(
            toks("t=2M hotspot region B load 0.9;"),
            vec![
                Token::Ident("t".into()),
                Token::Eq,
                Token::Int(2_000_000),
                Token::Ident("hotspot".into()),
                Token::Ident("region".into()),
                Token::Ident("B".into()),
                Token::Ident("load".into()),
                Token::Float(0.9),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn magnitude_suffixes() {
        assert_eq!(
            toks("1K 2M 3G 4"),
            vec![
                Token::Int(1_000),
                Token::Int(2_000_000),
                Token::Int(3_000_000_000),
                Token::Int(4),
            ]
        );
    }

    #[test]
    fn arrow_and_comments() {
        assert_eq!(
            toks("kill link 3 -> 7; # boom\nseed 1;"),
            vec![
                Token::Ident("kill".into()),
                Token::Ident("link".into()),
                Token::Int(3),
                Token::Arrow,
                Token::Int(7),
                Token::Semi,
                Token::Ident("seed".into()),
                Token::Int(1),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = lex("seed 1;\n@").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("1Mx").is_err(), "suffix must terminate the literal");
        assert!(lex("1.").is_err(), "dangling decimal point");
        assert!(lex("- 3").is_err(), "bare minus");
    }
}

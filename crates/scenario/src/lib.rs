//! # adaptnoc-scenario
//!
//! Time-phased, replayable scenario scripting for the Adapt-NoC
//! reproduction: a tiny DSL ([`lexer`]/[`parser`]/[`ast`]) for `.scn`
//! files that compose open-loop traffic phases, fault strikes, and
//! subNoC reconfiguration triggers; a semantic compiler ([`rules`])
//! resolving them against the chip; and a deterministic executor
//! ([`runner`]) producing offered-vs-accepted, tail-latency, and
//! source-queue measurements per epoch.
//!
//! ```
//! use adaptnoc_scenario::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = parse(
//!     "grid 4 4; warmup 1K; duration 4K; epoch 1K;
//!      region B 2 2 2 2;
//!      t=0 uniform load 0.05;
//!      t=2K hotspot region B load 0.3;  # hotspot storm
//!      t=3K glitch link 1 -> 2 for 500;",
//! )?;
//! // Canonical formatting round-trips.
//! assert_eq!(parse(&scenario.to_string())?, scenario);
//! let plan = compile(&scenario)?;
//! let out = run(&plan, &RunOptions::default())?;
//! assert!(out.delivered > 0);
//! assert!(out.p99 >= out.p50);
//! # Ok(())
//! # }
//! ```
//!
//! The grammar and a worked walkthrough live in `docs/SCENARIOS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod runner;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ast::{
        fmt_time, Action, ArrivalAst, Event, FabricAst, LoadAst, PatternAst, Scenario, ShapeAst,
        Sweep, TrafficCmd,
    };
    pub use crate::parser::{parse, ParseError};
    pub use crate::rules::{compile, CompileError, ExecPlan, ReconfigEvent, TrafficEvent};
    pub use crate::runner::{
        run, CancelToken, EpochRow, FaultSummary, RunError, RunOptions, ScenarioOutcome,
    };
}

//! The scenario abstract syntax tree and its canonical formatter.
//!
//! A [`Scenario`] is the parsed form of a `.scn` file: run directives
//! (grid, seed, warmup/duration/epoch, named regions, an optional load
//! sweep) plus a time-ordered list of [`Event`]s — traffic phases, fault
//! strikes, and reconfiguration triggers.
//!
//! `Display` produces the *canonical* form: every directive spelled out
//! (defaults included), times printed with the largest magnitude suffix
//! that divides them evenly, and default arrival/shape clauses omitted.
//! Canonical text reparses to an equal AST (`parse(format(s)) == s`),
//! the round-trip property the proptests pin down.

use adaptnoc_topology::geom::Rect;
use adaptnoc_topology::regions::TopologyKind;
use std::fmt;

/// Formats a cycle count with the largest magnitude suffix that divides
/// it evenly (`2000000` → `2M`).
pub fn fmt_time(t: u64) -> String {
    if t > 0 && t.is_multiple_of(1_000_000_000) {
        format!("{}G", t / 1_000_000_000)
    } else if t > 0 && t.is_multiple_of(1_000_000) {
        format!("{}M", t / 1_000_000)
    } else if t > 0 && t.is_multiple_of(1_000) {
        format!("{}K", t / 1_000)
    } else {
        t.to_string()
    }
}

/// A chiplet fabric directive, surface form: `chiplet CX CY CW CH
/// latency T links N`. The grid becomes the `CX*CW x CY*CH` tile array
/// and the runner builds the hierarchical chiplet network (per-chip
/// meshes joined by serialized inter-chip links) instead of the flat
/// mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricAst {
    /// Chips per package row.
    pub chips_x: u8,
    /// Chips per package column.
    pub chips_y: u8,
    /// Tiles per chip row.
    pub chip_w: u8,
    /// Tiles per chip column.
    pub chip_h: u8,
    /// Inter-chip link latency, cycles.
    pub link_latency: u8,
    /// Parallel links per chip boundary.
    pub links_per_edge: u8,
}

impl Default for FabricAst {
    fn default() -> Self {
        FabricAst {
            chips_x: 2,
            chips_y: 2,
            chip_w: 4,
            chip_h: 4,
            link_latency: 4,
            links_per_edge: 2,
        }
    }
}

/// A load sweep directive: campaign points from `from` to `to`
/// (inclusive, within float tolerance) in `step` increments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sweep {
    /// First load point.
    pub from: f64,
    /// Last load point (inclusive).
    pub to: f64,
    /// Increment between points.
    pub step: f64,
}

impl Sweep {
    /// The load points this sweep expands to.
    pub fn points(&self) -> Vec<f64> {
        let mut out = Vec::new();
        if self.step <= 0.0 {
            return out;
        }
        let mut k = 0.0;
        loop {
            // Points sit on the `from + k*step` grid, snapped to 1e-9
            // load resolution so float error never leaks into row labels
            // (0.30000000000000004 → 0.3).
            let v = ((self.from + k * self.step) * 1e9).round() / 1e9;
            if v > self.to + 1e-9 {
                return out;
            }
            out.push(v);
            k += 1.0;
        }
    }
}

/// Destination pattern, surface form (region names not yet resolved).
#[derive(Debug, Clone, PartialEq)]
pub enum PatternAst {
    /// Uniform random.
    Uniform,
    /// `(x, y) -> (y, x)`.
    Transpose,
    /// Random adjacent tile.
    Neighbor,
    /// Zipf-skewed popularity with exponent `s`.
    Zipf(f64),
    /// All traffic to one node id.
    HotspotNode(u16),
    /// All traffic into a named region.
    HotspotRegion(String),
}

/// Offered load, surface form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadAst {
    /// A fixed rate in packets per node per cycle.
    Fixed(f64),
    /// The campaign sweep placeholder (`load sweep`): each campaign
    /// point substitutes its own rate.
    Sweep,
}

/// Arrival process, surface form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalAst {
    /// At most one packet per source per cycle (the default; omitted in
    /// canonical form).
    Bernoulli,
    /// Poisson arrivals.
    Poisson,
    /// Markov-modulated Poisson: `mmpp BURST P_ON P_OFF`.
    Mmpp {
        /// On-state rate multiplier.
        burst: f64,
        /// Off→On probability per cycle.
        p_on: f64,
        /// On→Off probability per cycle.
        p_off: f64,
    },
}

/// Rate shaping, surface form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShapeAst {
    /// No shaping (the default; omitted in canonical form).
    Constant,
    /// `ramp to RATE over TIME`.
    RampTo {
        /// Target rate.
        rate: f64,
        /// Ramp duration, cycles.
        over: u64,
    },
    /// `diurnal AMPLITUDE period TIME`.
    Diurnal {
        /// Relative swing.
        amplitude: f64,
        /// Full period, cycles.
        period: u64,
    },
    /// `burst FACTOR every TIME for TIME`.
    Burst {
        /// Rate multiplier in the burst window.
        factor: f64,
        /// Interval between burst starts, cycles.
        every: u64,
        /// Burst length, cycles.
        len: u64,
    },
}

/// One traffic phase command.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficCmd {
    /// Where packets go.
    pub pattern: PatternAst,
    /// How much is offered.
    pub load: LoadAst,
    /// The arrival process.
    pub arrival: ArrivalAst,
    /// Time-varying modulation.
    pub shape: ShapeAst,
    /// Source region name (`in region NAME`); `None` drives the whole
    /// grid.
    pub region: Option<String>,
}

/// One scenario action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Install a traffic phase (replacing the active phase for the same
    /// source scope).
    Traffic(TrafficCmd),
    /// Permanently fail a router.
    KillRouter(u16),
    /// Permanently fail the `from -> to` link.
    KillLink {
        /// Source router id.
        from: u16,
        /// Destination router id.
        to: u16,
    },
    /// Transiently fail the `from -> to` link for `duration` cycles.
    GlitchLink {
        /// Source router id.
        from: u16,
        /// Destination router id.
        to: u16,
        /// Outage length, cycles.
        duration: u64,
    },
    /// Reconfigure a named region to a new subNoC topology.
    Reconfigure {
        /// Region name.
        region: String,
        /// Target topology.
        to: TopologyKind,
    },
}

/// A timed action.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Cycle (relative to the run start, warmup included) at which the
    /// action fires.
    pub at: u64,
    /// What happens.
    pub action: Action,
}

/// A parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Grid width and height in tiles.
    pub grid: (u8, u8),
    /// The chiplet fabric, if declared (`None` runs a flat mesh chip).
    /// When set, `grid` always equals the fabric's tile footprint — the
    /// parser derives it from the `chiplet` directive.
    pub fabric: Option<FabricAst>,
    /// Master seed for all scenario randomness.
    pub seed: u64,
    /// Cycles discarded before measurement starts.
    pub warmup: u64,
    /// Measured cycles (the run is `warmup + duration` long).
    pub duration: u64,
    /// Measurement-epoch length, cycles.
    pub epoch: u64,
    /// Named rectangles, in declaration order.
    pub regions: Vec<(String, Rect)>,
    /// The load sweep, if declared.
    pub sweep: Option<Sweep>,
    /// Timed actions, in file order.
    pub events: Vec<Event>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            grid: (8, 8),
            fabric: None,
            seed: 1,
            warmup: 20_000,
            duration: 100_000,
            epoch: 10_000,
            regions: Vec::new(),
            sweep: None,
            events: Vec::new(),
        }
    }
}

impl fmt::Display for PatternAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternAst::Uniform => f.write_str("uniform"),
            PatternAst::Transpose => f.write_str("transpose"),
            PatternAst::Neighbor => f.write_str("neighbor"),
            PatternAst::Zipf(s) => write!(f, "zipf {s}"),
            PatternAst::HotspotNode(n) => write!(f, "hotspot node {n}"),
            PatternAst::HotspotRegion(r) => write!(f, "hotspot region {r}"),
        }
    }
}

impl fmt::Display for TrafficCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} load ", self.pattern)?;
        match self.load {
            LoadAst::Fixed(v) => write!(f, "{v}")?,
            LoadAst::Sweep => f.write_str("sweep")?,
        }
        match self.arrival {
            ArrivalAst::Bernoulli => {}
            ArrivalAst::Poisson => f.write_str(" poisson")?,
            ArrivalAst::Mmpp { burst, p_on, p_off } => {
                write!(f, " mmpp {burst} {p_on} {p_off}")?;
            }
        }
        match self.shape {
            ShapeAst::Constant => {}
            ShapeAst::RampTo { rate, over } => {
                write!(f, " ramp to {rate} over {}", fmt_time(over))?;
            }
            ShapeAst::Diurnal { amplitude, period } => {
                write!(f, " diurnal {amplitude} period {}", fmt_time(period))?;
            }
            ShapeAst::Burst { factor, every, len } => {
                write!(
                    f,
                    " burst {factor} every {} for {}",
                    fmt_time(every),
                    fmt_time(len)
                )?;
            }
        }
        if let Some(r) = &self.region {
            write!(f, " in region {r}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Traffic(t) => t.fmt(f),
            Action::KillRouter(r) => write!(f, "kill router {r}"),
            Action::KillLink { from, to } => write!(f, "kill link {from} -> {to}"),
            Action::GlitchLink { from, to, duration } => {
                write!(f, "glitch link {from} -> {to} for {}", fmt_time(*duration))
            }
            Action::Reconfigure { region, to } => {
                write!(f, "reconfigure region {region} to {}", to.name())
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "grid {} {};", self.grid.0, self.grid.1)?;
        if let Some(fb) = self.fabric {
            writeln!(
                f,
                "chiplet {} {} {} {} latency {} links {};",
                fb.chips_x, fb.chips_y, fb.chip_w, fb.chip_h, fb.link_latency, fb.links_per_edge
            )?;
        }
        writeln!(f, "seed {};", self.seed)?;
        writeln!(f, "warmup {};", fmt_time(self.warmup))?;
        writeln!(f, "duration {};", fmt_time(self.duration))?;
        writeln!(f, "epoch {};", fmt_time(self.epoch))?;
        for (name, r) in &self.regions {
            writeln!(f, "region {name} {} {} {} {};", r.x, r.y, r.w, r.h)?;
        }
        if let Some(s) = self.sweep {
            writeln!(f, "sweep load {} to {} step {};", s.from, s.to, s.step)?;
        }
        for e in &self.events {
            writeln!(f, "t={} {};", fmt_time(e.at), e.action)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_uses_largest_even_suffix() {
        assert_eq!(fmt_time(0), "0");
        assert_eq!(fmt_time(999), "999");
        assert_eq!(fmt_time(2_000), "2K");
        assert_eq!(fmt_time(2_500), "2500");
        assert_eq!(fmt_time(3_000_000), "3M");
        assert_eq!(fmt_time(1_000_000_000), "1G");
    }

    #[test]
    fn sweep_points_are_step_aligned() {
        let s = Sweep {
            from: 0.05,
            to: 0.3,
            step: 0.05,
        };
        let pts = s.points();
        assert_eq!(pts.len(), 6);
        assert!((pts[5] - 0.3).abs() < 1e-12);
        assert!(Sweep {
            from: 0.1,
            to: 0.5,
            step: 0.0
        }
        .points()
        .is_empty());
    }

    #[test]
    fn canonical_form_spells_out_defaults() {
        let s = Scenario::default();
        let text = s.to_string();
        assert!(text.contains("grid 8 8;"));
        assert!(text.contains("warmup 20K;"));
        assert!(text.contains("duration 100K;"));
    }
}

//! Watches the fault-injection subsystem survive a transient link outage
//! and then a permanent link loss on a live 4x4 mesh: NACKed packets are
//! retried with exponential backoff, and the permanent fault triggers a
//! live recomputation of the subNoC's routes over the degraded graph,
//! swapped in by the reconfiguration protocol while traffic keeps flowing.
//!
//! Deterministic: every run prints byte-identical output.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```

use adaptnoc::faults::prelude::*;
use adaptnoc::sim::config::SimConfig;
use adaptnoc::sim::network::Network;
use adaptnoc::sim::prelude::{NodeId, Packet};
use adaptnoc::topology::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::new(4, 4);
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::baseline();
    let spec = mesh_chip(grid, &cfg)?;
    let mut net = Network::new(spec, cfg.clone())?;

    // The east-bound link out of router (1,1): first a 60-cycle transient
    // outage at cycle 50, then a permanent loss of the same link at 400.
    let key = net
        .spec()
        .channels
        .iter()
        .find(|c| {
            c.src.router == grid.router(Coord::new(1, 1))
                && c.dst.router == grid.router(Coord::new(2, 1))
        })
        .map(|c| c.key())
        .expect("mesh link (1,1)->(2,1)");
    let schedule = FaultSchedule::new(vec![
        FaultEvent {
            at: 50,
            kind: FaultKind::TransientLink { key, duration: 60 },
        },
        FaultEvent {
            at: 400,
            kind: FaultKind::PermanentLink { key },
        },
    ]);
    let mut ctl = FaultController::new(
        schedule,
        RetryPolicy::default(),
        grid,
        rect,
        cfg,
        ReconfigTiming::default(),
    );
    println!("fault plan: transient @50 (heals @110), permanent @400 on {key:?}\n");

    // Closed-loop stride traffic; every node talks across the chip.
    let mut next_id = 0u64;
    for cycle in 0..4_000u64 {
        let now = net.now();
        if now < 800 && now % 8 == 0 {
            for i in 0..16u16 {
                next_id += 1;
                net.inject(Packet::request(next_id, NodeId(i), NodeId((i + 5) % 16), 0))?;
            }
        }
        net.step();
        ctl.tick(&mut net)?;
        if cycle >= 800 && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }

    let s = net.totals().stats;
    let st = ctl.stats();
    println!("offered   {:>6}", s.packets_offered);
    println!(
        "delivered {:>6}  (delivery ratio {:.4})",
        s.packets,
        s.delivery_ratio()
    );
    println!("nacked    {:>6}", s.nacks);
    println!("retried   {:>6}", s.retries);
    println!("dropped   {:>6}", s.drops);
    println!(
        "\ntransients fired: {} | permanent links fired: {}",
        st.transients_fired, st.permanent_links_fired
    );
    for (i, r) in st.recoveries.iter().enumerate() {
        println!(
            "recovery #{}: fault @{} -> recovered @{} ({} cycles), disconnected {:?}, reversed {:?}",
            i + 1,
            r.fault_at,
            r.recovered_at,
            r.time_to_recover(),
            r.disconnected,
            r.reversed
        );
    }
    println!(
        "\nthe dead link is gone from the live spec: {}",
        !net.spec().channels.iter().any(|c| c.key() == key)
    );
    assert_eq!(s.drops, 0, "nothing dropped in this scenario");
    assert_eq!(s.packets, s.packets_offered, "everything delivered");
    Ok(())
}

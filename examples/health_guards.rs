//! Watches the runtime health guards rescue a wedged reconfiguration on a
//! live 4x4 chip. A slow-path drain to a concentrated mesh pauses the
//! region's network interfaces and waits for quiescence; a permanent
//! channel fault strikes mid-drain, so the blocked packets can never
//! clear on their own. The deadlock watchdog detects the stall and the
//! self-healing ladder escalates — re-route, then purge-and-retry — until
//! the drain completes with zero lost packets. Strict invariant guards
//! (credit conservation, flit conservation, fault/power isolation) run
//! every cycle throughout.
//!
//! Deterministic: every run prints byte-identical output.
//!
//! ```sh
//! cargo run --release --example health_guards
//! ```

use adaptnoc::core::reconfig::RegionReconfig;
use adaptnoc::faults::prelude::*;
use adaptnoc::sim::config::SimConfig;
use adaptnoc::sim::health::WatchdogConfig;
use adaptnoc::sim::network::Network;
use adaptnoc::sim::prelude::{GuardMode, NodeId, Packet, RouterId};
use adaptnoc::topology::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::new(4, 4);
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let regions = |kind| [RegionTopology::new(rect, kind)];
    let mesh = build_chip_spec(grid, &regions(TopologyKind::Mesh), &cfg)?;
    let cmesh = build_chip_spec(grid, &regions(TopologyKind::Cmesh), &cfg)?;
    let timing = ReconfigTiming::default();
    let mut net = Network::new(mesh.clone(), cfg.clone())?;

    // Always-on invariant checking: any conservation-law breach panics on
    // the cycle it happens instead of surfacing as a bad result later.
    net.set_guard_mode(GuardMode::Strict);

    // The health guard owns the watchdog and the escalation ladder. A
    // short window keeps the demo brisk; the default (50k cycles) suits
    // long unattended campaigns.
    let guard = HealthGuard::new(
        &mut net,
        rect,
        timing,
        mesh.tables.clone(),
        GuardConfig {
            watchdog: WatchdogConfig {
                window: 400,
                check_interval: 32,
                max_packet_age: None,
            },
            grace: 250,
            max_rounds: 2,
            recorder_capacity: 256,
        },
    );
    let mut ctl = FaultController::new(
        FaultSchedule::new(vec![]),
        RetryPolicy::default(),
        grid,
        rect,
        cfg,
        timing,
    );
    ctl.attach_guard(guard);

    // The wedge: the eastbound row-1 link R5 -> R6, which the N4 -> N7
    // stream crosses under XY routing and which the cmesh does not keep.
    let key = net
        .spec()
        .channels
        .iter()
        .find(|c| c.src.router == RouterId(5) && c.dst.router == RouterId(6))
        .map(|c| c.key())
        .expect("mesh link R5 -> R6");
    println!("plan: stream N4 -> N7, fault {key:?} @40, start mesh -> cmesh drain @60\n");

    let mut rc: Option<RegionReconfig> = None;
    let mut last_rung = 0u8;
    let mut next_id = 1u64;
    for _ in 0..8_000u64 {
        let now = net.now();
        if now < 100 && now.is_multiple_of(3) {
            net.inject(Packet::request(next_id, NodeId(4), NodeId(7), 0))?;
            next_id += 1;
        }
        if now == 40 {
            // Packets mid-allocation across the channel come back NACKed;
            // hand them straight to the retry path so nothing is lost.
            for p in net.set_channel_fault(key, true)? {
                net.inject_retry(p, 1)?;
            }
            println!("cycle {now:>5}: permanent fault on {key:?}");
        }
        if now == 60 {
            rc = Some(RegionReconfig::start(
                &net,
                &grid,
                rect,
                cmesh.clone(),
                None,
                timing,
            ));
            println!("cycle {now:>5}: slow-path drain to cmesh begins (region NIs pause)");
        }
        net.step();
        if let Some(r) = &mut rc {
            if r.tick(&mut net, &grid)? {
                println!("cycle {:>5}: drain complete, cmesh live", net.now());
                rc = None;
            }
        }
        ctl.tick(&mut net)?;
        let rung = ctl.guard().map(|g| g.rung()).unwrap_or(0);
        if rung != last_rung {
            match rung {
                0 => println!("cycle {:>5}: recovered, ladder stands down", net.now()),
                1 => println!(
                    "cycle {:>5}: watchdog fired -- rung 1: re-route onto fallback tables",
                    net.now()
                ),
                2 => println!(
                    "cycle {:>5}: still stalled -- rung 2: purge blocked packets, NACK + retry",
                    net.now()
                ),
                _ => println!(
                    "cycle {:>5}: still stalled -- rung 3: roll region back to last good spec",
                    net.now()
                ),
            }
            last_rung = rung;
        }
        if now > 500 && rc.is_none() && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }

    let s = net.totals().stats;
    let h = net.totals().health;
    let g = ctl.stats().guard;
    println!("\noffered   {:>6}", s.packets_offered);
    println!(
        "delivered {:>6}  (delivery ratio {:.4})",
        s.packets,
        s.delivery_ratio()
    );
    println!("nacked    {:>6}", s.nacks);
    println!("retried   {:>6}", s.retries);
    println!("dropped   {:>6}", s.drops);
    println!(
        "\nguard: {} stall episode(s), {} re-route(s), {} packet(s) purged, {} rollback(s), {} recovery(ies)",
        g.watchdog_fires, g.reroutes, g.purged_packets, g.rollbacks, g.recoveries
    );
    println!(
        "strict invariant checks: {} run, {} violations",
        h.checks, h.violations
    );
    println!(
        "cmesh live (concentration gated {} of 16 routers): {}",
        16 - net.spec().active_routers(),
        net.spec().active_routers() == 4
    );
    assert_eq!(s.drops, 0, "nothing dropped in this scenario");
    assert_eq!(s.packets, s.packets_offered, "everything delivered");
    assert_eq!(h.violations, 0, "a legal execution trips no guards");
    Ok(())
}

//! Prints a link-heat view of congestion for each subNoC topology under
//! MC-bound (hotspot) traffic — visualizing *why* the tree wins reply
//! distribution.
//!
//! ```sh
//! cargo run --release --example congestion_heatmap
//! ```

use adaptnoc::sim::config::SimConfig;
use adaptnoc::sim::network::Network;
use adaptnoc::topology::prelude::*;
use adaptnoc::workloads::prelude::*;

fn heat(kind: TopologyKind) -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg)?;
    let mut net = Network::new(spec, cfg)?;

    // The MC at the origin answers everyone: hotspot replies outward.
    let mc = grid.node(Coord::new(0, 0));
    let mut inj = SyntheticInjector::new(grid, rect, Pattern::Hotspot(mc), 0.04, 9);
    inj.data_fraction = 0.0;
    let mut wl_replies = 0u64;
    for _ in 0..8_000 {
        inj.tick(&mut net);
        // The hotspot replies with data packets round-robin.
        for d in net.drain_delivered() {
            if d.packet.dst == mc {
                wl_replies += 1;
                let _ = net.inject(adaptnoc::sim::flit::Packet::reply(
                    1_000_000 + wl_replies,
                    mc,
                    d.packet.src,
                    0,
                ));
            }
        }
        net.step();
    }

    // Aggregate per-router outgoing flits into a tile heat map.
    let flits = net.channel_flits_epoch().to_vec();
    let mut tile_heat = vec![0u64; grid.tiles()];
    for (i, ch) in net.spec().channels.iter().enumerate() {
        tile_heat[ch.src.router.index()] += flits[i];
    }
    let max = tile_heat.iter().copied().max().unwrap_or(1).max(1);

    println!("\n{kind} (replies from the MC at the *; scale 0-9):");
    for y in (0..rect.h).rev() {
        let mut row = String::from("  ");
        for x in 0..rect.w {
            let r = grid.router(Coord::new(x, y)).index();
            let level = (tile_heat[r] * 9 / max) as u8;
            if x == 0 && y == 0 {
                row.push('*');
            } else {
                row.push(char::from(b'0' + level));
            }
            row.push(' ');
        }
        println!("{row}");
    }
    let report = net.totals();
    println!(
        "  avg packet latency {:.1} cycles over {} packets",
        report.stats.avg_network_latency() + report.stats.avg_queuing_latency(),
        report.stats.packets
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MC-reply congestion by topology (4x4 subNoC, hotspot pattern)");
    for kind in [TopologyKind::Mesh, TopologyKind::Tree, TopologyKind::Torus] {
        heat(kind)?;
    }
    Ok(())
}

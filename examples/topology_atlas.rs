//! Prints a deterministic summary of every topology design point the
//! workspace can generate — the machine-checkable companion to
//! `docs/TOPOLOGIES.md`.
//!
//! ```sh
//! cargo run --release --example topology_atlas
//! ```
//!
//! For each design point: node/router/channel counts, total wire length
//! (tile pitches, routed dimension-ordered), the generalized wiring-budget
//! report against the paper's 45 nm limits, a vertical-midline bisection
//! estimate, and all-pairs route statistics from the deadlock validator.
//! The output contains no timestamps or host state, so CI runs it twice
//! and diffs: any nondeterminism in a topology generator fails the build.

use adaptnoc::sim::prelude::*;
use adaptnoc::sim::spec::{ChannelKind, NetworkSpec};
use adaptnoc::topology::prelude::*;

/// Sum of dimension-ordered wire lengths in tile pitches, split into
/// on-chip metal and inter-chip substrate traces.
fn wire_length(spec: &NetworkSpec, grid: &Grid) -> (u32, u32) {
    let (mut metal, mut substrate) = (0u32, 0u32);
    for ch in &spec.channels {
        let a = grid.coord(ch.src.router);
        let b = grid.coord(ch.dst.router);
        let len = a.manhattan(b) as u32;
        if ch.kind == ChannelKind::InterChip {
            substrate += len;
        } else {
            metal += len;
        }
    }
    (metal, substrate)
}

/// Directed channels whose endpoints straddle the vertical midline — a
/// standard bisection-bandwidth estimate in links.
fn bisection(spec: &NetworkSpec, grid: &Grid) -> u32 {
    let mid = grid.width / 2;
    spec.channels
        .iter()
        .filter(|ch| {
            let a = grid.coord(ch.src.router);
            let b = grid.coord(ch.dst.router);
            (a.x < mid) != (b.x < mid)
        })
        .count() as u32
}

fn describe(name: &str, spec: &NetworkSpec, grid: Grid) {
    let (metal, substrate) = wire_length(spec, &grid);
    let report = wiring_feasible(spec, &grid, &WiringLimits::paper());
    let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
    let stats = check_routes_and_deadlock(spec, &all_pairs(&nodes))
        .unwrap_or_else(|e| panic!("{name}: validation failed: {e}"));
    println!(
        "{:<18} {:>6} {:>8} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8.2} {:>4} {:>5}",
        name,
        grid.tiles(),
        spec.routers.len(),
        spec.channels.len(),
        metal,
        substrate,
        bisection(spec, &grid),
        report.max_channels_per_edge,
        stats.avg_hops(),
        stats.max_hops,
        if report.fits { "yes" } else { "NO" }
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::baseline();
    println!(
        "{:<18} {:>6} {:>8} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8} {:>4} {:>5}",
        "design",
        "tiles",
        "routers",
        "channels",
        "wire",
        "serdes",
        "bisection",
        "max/edge",
        "avg-hops",
        "max",
        "fits"
    );

    // The paper's four subNoC topologies, each filling an 8x8 chip.
    let g8 = Grid::new(8, 8);
    for kind in [
        TopologyKind::Mesh,
        TopologyKind::Cmesh,
        TopologyKind::Torus,
        TopologyKind::Tree,
        TopologyKind::TorusTree,
    ] {
        let regions = [RegionTopology::new(Rect::new(0, 0, 8, 8), kind)];
        let spec = build_chip_spec(g8, &regions, &cfg)?;
        describe(&format!("{kind:?}-8x8").to_lowercase(), &spec, g8);
    }

    // Baselines.
    describe("ftby-8x8", &ftby_chip(g8, &cfg)?, g8);

    // The customizable sparse generator at its default design point.
    let g16 = Grid::new(16, 16);
    let params = SparseHammingParams::default_for(16, 16);
    let spec = sparse_hamming_chip(g16, &params, &cfg)?;
    describe("sparse-hamming-16", &spec, g16);

    // Hierarchical chiplet fabrics: same 16x16 tile budget, split 2x2.
    let cc = ChipletConfig::new(2, 2, 8, 8);
    describe("chiplet-2x2x8", &chiplet_chip(&cc, &cfg)?, cc.grid());

    Ok(())
}

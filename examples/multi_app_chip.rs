//! The paper's headline scenario: three applications run concurrently on
//! an 8x8 heterogeneous chip, each in its own subNoC with a topology
//! matched to its traffic — and the chip reconfigures live.
//!
//! ```sh
//! cargo run --release --example multi_app_chip
//! ```

use adaptnoc::core::prelude::*;
use adaptnoc::power::prelude::*;
use adaptnoc::sim::prelude::EpochReport;
use adaptnoc::topology::prelude::*;
use adaptnoc::workloads::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CPU app (Canneal) in a 4x4, GPU apps (Kmeans, Backprop) in a 4x4 and
    // an 8x4 region — the paper's mixed-workload mapping.
    let layout = ChipLayout::paper_mixed();
    let profiles = vec![
        by_name("CA").unwrap(),
        by_name("KM").unwrap(),
        by_name("BP").unwrap(),
    ];

    // Adapt-NoC with per-region static topology choices: cmesh for the
    // sparse CPU app, tree for the reply-heavy Kmeans, torus for Backprop.
    let policies = vec![
        TopologyPolicy::Fixed(TopologyKind::Cmesh),
        TopologyPolicy::Fixed(TopologyKind::Tree),
        TopologyPolicy::Fixed(TopologyKind::Torus),
    ];
    let mut design = Design::build(DesignKind::AdaptNocNoRl, layout.clone(), &[], policies, 7)?;
    let mut wl = Workload::new(&layout, &profiles, 7);
    let model = EnergyModel::new(design.net.config());

    let epoch_cycles = 20_000u64;
    println!("epoch | app    topology   net-lat  queue-lat   hops");
    for epoch in 0..6u64 {
        for _ in 0..epoch_cycles {
            wl.tick(&mut design.net);
            design.net.step();
            design.tick()?;
        }
        let snaps: Vec<_> = wl.apps.iter().map(|a| (a.profile.name, a.epoch)).collect();
        let (_report, telemetry): (EpochReport, _) =
            wl.epoch_telemetry(&mut design.net, &layout, &model);
        let ctl = design.controller().unwrap();
        for (i, (name, e)) in snaps.iter().enumerate() {
            println!(
                "{epoch:>5} | {name:<6} {:<10} {:>8.1} {:>10.1} {:>6.2}",
                ctl.regions[i].current.name(),
                e.avg_network_latency(),
                e.avg_queuing_latency(),
                e.avg_hops()
            );
        }
        design.on_epoch(&EpochReport::default(), &telemetry)?;
    }

    let ctl = design.controller().unwrap();
    println!("\nreconfigurations completed:");
    for (i, rc) in ctl.regions.iter().enumerate() {
        println!(
            "  region {} ({}): {} reconfigs, {} total cycles, now {}",
            i,
            rc.region.rect,
            rc.reconfig_count,
            rc.reconfig_cycles,
            rc.current.name()
        );
    }
    println!(
        "active routers: {} of 64 | app progress: {:?}",
        design.net.spec().active_routers(),
        wl.apps
            .iter()
            .map(|a| format!("{}: {:.0}%", a.profile.name, a.progress() * 100.0))
            .collect::<Vec<_>>()
    );
    Ok(())
}

//! Trains the DQN control policy offline (Sec. III-E) and deploys it:
//! the controller then picks a subNoC topology every epoch from the
//! 12-attribute state vector, maximizing `-power x latency`.
//!
//! ```sh
//! cargo run --release --example rl_training
//! ```

use adaptnoc::bench::prelude::*;
use adaptnoc::core::prelude::*;
use adaptnoc::topology::prelude::*;
use adaptnoc::workloads::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline training over the paper's region sizes (2x4 ... 8x8) and a
    //    spread of CPU/GPU profiles.
    println!("training the DQN (12-15-15-4) offline...");
    let tc = TrainConfig::default();
    let policy = train_dqn(&default_scenarios(), &tc, None)?;
    println!("trained; deploying with epsilon = 0.05\n");

    // 2. Deployment: the policy controls a GPU app's 4x8 subNoC.
    let rc = RunConfig {
        epoch_cycles: 10_000,
        epochs: 8,
        warmup_epochs: 1,
        ..Default::default()
    };
    for name in ["BS", "CA", "KM", "BP"] {
        let profile = by_name(name).unwrap();
        let gpu = profile.class == AppClass::Gpu;
        let rect = if gpu {
            Rect::new(0, 0, 4, 8)
        } else {
            Rect::new(0, 0, 4, 4)
        };
        let layout = ChipLayout::single(rect, gpu);
        let result = run_design(
            DesignKind::AdaptNoc,
            &layout,
            std::slice::from_ref(&profile),
            vec![TopologyPolicy::Trained(policy.clone())],
            &rc,
        )?;
        let sel = result.selections.as_ref().unwrap()[0];
        println!(
            "{name:<5} ({}) selections: mesh {:>4.0}% cmesh {:>4.0}% torus {:>4.0}% tree {:>4.0}% | \
             pkt latency {:>6.1} cyc | {} reconfigs",
            if gpu { "gpu" } else { "cpu" },
            sel[0] * 100.0,
            sel[1] * 100.0,
            sel[2] * 100.0,
            sel[3] * 100.0,
            result.packet_latency(),
            result.reconfigs,
        );
    }
    Ok(())
}

//! Compares all subNoC topologies (and the FTBY/baseline designs) on one
//! application: the per-topology numbers behind the RL controller's
//! decisions.
//!
//! ```sh
//! cargo run --release --example topology_comparison [APP]
//! ```
//!
//! `APP` is a Table-II name (BS, SW, X264, FR, BT, CA, FL, KM, BP, HW, GA,
//! BFS, NW, HS); defaults to CA.

use adaptnoc::bench::prelude::*;
use adaptnoc::core::prelude::*;
use adaptnoc::topology::prelude::*;
use adaptnoc::workloads::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "CA".into());
    let profile = by_name(&name).ok_or("unknown Table-II app name")?;
    let gpu = profile.class == AppClass::Gpu;
    let rect = if gpu {
        Rect::new(0, 0, 4, 8)
    } else {
        Rect::new(0, 0, 4, 4)
    };
    let layout = ChipLayout::single(rect, gpu);
    let rc = RunConfig {
        epoch_cycles: 25_000,
        epochs: 3,
        warmup_epochs: 1,
        ..Default::default()
    };

    println!(
        "{} ({}) in a {} subNoC — {} measured cycles per design\n",
        profile.name,
        if gpu { "gpu" } else { "cpu" },
        rect,
        rc.epoch_cycles * rc.epochs
    );
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "design", "net-lat", "queue", "hops", "power(W)", "reward"
    );

    let print_row = |label: &str, r: &RunResult| {
        let power = r.energy.total_j() / (r.cycles.max(1) as f64 * 1e-9);
        let reward = -power * r.packet_latency();
        println!(
            "{label:<22} {:>9.1} {:>9.1} {:>8.2} {:>9.2} {:>10.1}",
            r.network_latency, r.queuing_latency, r.hops, power, reward
        );
    };

    let base = run_design(
        DesignKind::Baseline,
        &layout,
        std::slice::from_ref(&profile),
        vec![],
        &rc,
    )?;
    print_row("baseline mesh (3 VC)", &base);

    for kind in TopologyKind::ACTIONS {
        let r = run_design(
            DesignKind::AdaptNocNoRl,
            &layout,
            std::slice::from_ref(&profile),
            fixed_policies(&[kind]),
            &rc,
        )?;
        print_row(&format!("adapt {} (2 VC)", kind.name()), &r);
    }

    let ftby = run_design(
        DesignKind::Ftby,
        &layout,
        std::slice::from_ref(&profile),
        vec![],
        &rc,
    )?;
    print_row("flattened butterfly", &ftby);

    println!(
        "\nreward = -power x (T_network + T_queuing), the quantity the DQN\n\
         controller maximizes (Eq. 2); the topology with the highest reward\n\
         is what Adapt-NoC converges to for this application."
    );
    Ok(())
}

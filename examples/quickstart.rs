//! Quickstart: build an Adapt-NoC chip with two subNoCs, run traffic, and
//! print performance and energy statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adaptnoc::power::prelude::*;
use adaptnoc::sim::prelude::*;
use adaptnoc::topology::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 chip split into two subNoCs: a concentrated mesh on the left
    // half (sparse CPU-style traffic) and a torus on the right half
    // (bandwidth-hungry GPU-style traffic).
    let grid = Grid::paper();
    let regions = [
        RegionTopology::new(Rect::new(0, 0, 4, 8), TopologyKind::Cmesh),
        RegionTopology::new(Rect::new(4, 0, 4, 8), TopologyKind::Torus),
    ];
    let cfg = SimConfig::adapt_noc();
    let spec = build_chip_spec(grid, &regions, &cfg)?;

    // Static validation: routes terminate, channel dependencies acyclic.
    for rect in [Rect::new(0, 0, 4, 8), Rect::new(4, 0, 4, 8)] {
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes))?;
        println!(
            "{rect}: {} routes validated, avg {:.2} / max {} hops",
            stats.routes,
            stats.avg_hops(),
            stats.max_hops
        );
    }

    // Run all-pairs traffic within each region.
    let mut net = Network::new(spec, cfg.clone())?;
    let mut id = 0u64;
    for rect in [Rect::new(0, 0, 4, 8), Rect::new(4, 0, 4, 8)] {
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        for &s in &nodes {
            for &d in &nodes {
                if s != d {
                    id += 1;
                    net.inject(Packet::request(id, s, d, 0))?;
                }
            }
        }
    }
    while net.in_flight() > 0 {
        net.step();
    }

    let delivered = net.drain_delivered();
    println!(
        "\ndelivered {} packets in {} cycles",
        delivered.len(),
        net.now()
    );

    let report = net.totals();
    println!(
        "avg network latency {:.1} cycles | avg hops {:.2} | buffer util {:.1}%",
        report.stats.avg_network_latency(),
        report.stats.avg_hops(),
        report.stats.avg_buffer_utilization() * 100.0
    );

    // Energy via the 45 nm model.
    let model = EnergyModel::new(&cfg);
    let energy = model.energy(&report);
    println!(
        "energy: {:.2} µJ dynamic + {:.2} µJ static = {:.2} µJ ({:.2} W avg)",
        energy.dynamic_j * 1e6,
        energy.static_j * 1e6,
        energy.total_j() * 1e6,
        model.avg_power_w(&report)
    );

    // The cmesh half power-gated 24 routers.
    println!(
        "active routers: {} of 64 (cmesh gates its idle routers)",
        net.spec().active_routers()
    );
    Ok(())
}

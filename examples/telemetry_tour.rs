//! A tour of the telemetry subsystem on a deterministic fault +
//! escalation + reconfiguration scenario (the `health_guards` wedge: a
//! permanent link fault strikes mid-drain, the watchdog fires, and the
//! self-healing ladder re-routes and purges until the drain completes).
//! The network runs under `TelemetryMode::Strict`, and the final metric
//! snapshot is printed: every counter, gauge, non-empty histogram and
//! structured event the run produced, spanning the simulator, fault and
//! guard metric families of `docs/OBSERVABILITY.md`.
//!
//! Deterministic: every run prints byte-identical output (wall-clock span
//! durations are collected too, but only their deterministic sample
//! counts are shown).
//!
//! ```sh
//! cargo run --release --example telemetry_tour
//! ```

use adaptnoc::core::reconfig::RegionReconfig;
use adaptnoc::faults::prelude::*;
use adaptnoc::sim::config::SimConfig;
use adaptnoc::sim::health::WatchdogConfig;
use adaptnoc::sim::network::Network;
use adaptnoc::sim::prelude::{NodeId, Packet, RouterId, TelemetryMode};
use adaptnoc::topology::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::new(4, 4);
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let regions = |kind| [RegionTopology::new(rect, kind)];
    let mesh = build_chip_spec(grid, &regions(TopologyKind::Mesh), &cfg)?;
    let cmesh = build_chip_spec(grid, &regions(TopologyKind::Cmesh), &cfg)?;
    let timing = ReconfigTiming::default();
    let mut net = Network::new(mesh.clone(), cfg.clone())?;

    // Full-rate collection: every counter exact, every stage timed.
    net.set_telemetry_mode(TelemetryMode::Strict);

    let guard = HealthGuard::new(
        &mut net,
        rect,
        timing,
        mesh.tables.clone(),
        GuardConfig {
            watchdog: WatchdogConfig {
                window: 400,
                check_interval: 32,
                max_packet_age: None,
            },
            grace: 250,
            max_rounds: 2,
            recorder_capacity: 256,
        },
    );
    let mut ctl = FaultController::new(
        FaultSchedule::new(vec![]),
        RetryPolicy::default(),
        grid,
        rect,
        cfg,
        timing,
    );
    ctl.attach_guard(guard);

    // The wedge: fault the eastbound R5 -> R6 link that the N4 -> N7
    // stream crosses, then start a drain the blocked packets can't clear.
    let key = net
        .spec()
        .channels
        .iter()
        .find(|c| c.src.router == RouterId(5) && c.dst.router == RouterId(6))
        .map(|c| c.key())
        .expect("mesh link R5 -> R6");
    println!("scenario: stream N4 -> N7, fault R5->R6 @40, mesh -> cmesh drain @60");

    let mut rc: Option<RegionReconfig> = None;
    let mut next_id = 1u64;
    for _ in 0..8_000u64 {
        let now = net.now();
        if now < 100 && now.is_multiple_of(3) {
            net.inject(Packet::request(next_id, NodeId(4), NodeId(7), 0))?;
            next_id += 1;
        }
        if now == 40 {
            for p in net.set_channel_fault(key, true)? {
                net.inject_retry(p, 1)?;
            }
        }
        if now == 60 {
            rc = Some(RegionReconfig::start(
                &net,
                &grid,
                rect,
                cmesh.clone(),
                None,
                timing,
            ));
        }
        net.step();
        if let Some(r) = &mut rc {
            if r.tick(&mut net, &grid)? {
                rc = None;
            }
        }
        ctl.tick(&mut net)?;
        if now > 500 && rc.is_none() && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }

    // Epoch boundary: flush the simulator's deltas into the registry.
    let _ = net.take_epoch();
    let snap = net.telemetry().expect("strict telemetry").snapshot();

    let labels = |l: &adaptnoc::sim::telemetry::Labels| {
        if l.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", l.key())
        }
    };
    println!("\n== metric snapshot (mode {}) ==", snap.mode);
    println!("\ncounters:");
    for c in &snap.counters {
        println!("  {}{} = {} {}", c.name, labels(&c.labels), c.value, c.unit);
    }
    println!("\ngauges:");
    for g in &snap.gauges {
        println!(
            "  {}{} = {:.3} {}",
            g.name,
            labels(&g.labels),
            g.value,
            g.unit
        );
    }
    println!("\nhistograms (non-empty buckets as le:count):");
    for h in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(le, n)| format!("{le}:{n}"))
            .collect();
        println!(
            "  {}{} count={} sum={} [{}]",
            h.name,
            labels(&h.labels),
            h.count,
            h.sum,
            buckets.join(" ")
        );
    }
    println!("\nspans (wall-clock; deterministic sample counts only):");
    for s in &snap.spans {
        println!("  {} samples={}", s.name, s.count);
    }
    println!(
        "\nevents ({} recorded, {} dropped):",
        snap.events.len(),
        snap.events_dropped
    );
    for e in &snap.events {
        let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("  @{:<5} {} {}", e.cycle, e.name, fields.join(" "));
    }
    Ok(())
}

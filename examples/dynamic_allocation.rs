//! Dynamic subNoC allocation (Sec. II-C1): applications arrive and depart;
//! the allocator places each in a free rectangle, the chip spec is rebuilt
//! around the live allocations, and the network reconfigures without ever
//! dropping a packet.
//!
//! ```sh
//! cargo run --release --example dynamic_allocation
//! ```

use adaptnoc::core::prelude::*;
use adaptnoc::sim::config::SimConfig;
use adaptnoc::sim::network::Network;
use adaptnoc::sim::prelude::{NodeId, Packet};
use adaptnoc::topology::prelude::*;

fn spec_for(
    grid: Grid,
    allocs: &[Allocation],
    kinds: &[TopologyKind],
    cfg: &SimConfig,
) -> adaptnoc::sim::spec::NetworkSpec {
    let regions: Vec<RegionTopology> = allocs
        .iter()
        .zip(kinds)
        .map(|(a, &k)| RegionTopology::new(a.rect, k))
        .collect();
    build_chip_spec(grid, &regions, cfg).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::paper();
    let cfg = SimConfig::adapt_noc();
    let mut alloc = SubNocAllocator::new(grid);

    // Schedule: (event name, arrivals (app, tiles, topology), departures).
    type Arrival = (u64, usize, TopologyKind);
    let schedule: Vec<(&str, Vec<Arrival>, Vec<u64>)> = vec![
        (
            "t0: two apps arrive",
            vec![(1, 16, TopologyKind::Cmesh), (2, 32, TopologyKind::Torus)],
            vec![],
        ),
        (
            "t1: third app arrives",
            vec![(3, 16, TopologyKind::Tree)],
            vec![],
        ),
        ("t2: app 2 departs", vec![], vec![2]),
        (
            "t3: two small apps reuse the space",
            vec![(4, 8, TopologyKind::Mesh), (5, 16, TopologyKind::Cmesh)],
            vec![],
        ),
    ];

    let mut net: Option<Network> = None;
    let mut kinds_by_app: std::collections::HashMap<u64, TopologyKind> =
        std::collections::HashMap::new();
    let mut injected = 0u64;
    let mut delivered = 0u64;

    for (label, arrivals, departures) in schedule {
        for app in departures {
            let rect = alloc.free(app)?;
            kinds_by_app.remove(&app);
            println!("{label}: app {app} freed {rect}");
        }
        for (app, tiles, kind) in arrivals {
            let a = alloc.allocate(app, tiles)?;
            kinds_by_app.insert(app, kind);
            println!(
                "{label}: app {app} -> {} as {} ({} MC blocks)",
                a.rect,
                kind.name(),
                alloc.mc_tiles(app).unwrap().len()
            );
        }

        // Rebuild the chip around the live allocations. (Scheduling events
        // happen at drained quiesce points — the fine-grained, in-traffic
        // path is the per-epoch topology reconfiguration shown in
        // examples/reconfiguration.rs.)
        let allocs = alloc.allocations();
        let kinds: Vec<TopologyKind> = allocs.iter().map(|a| kinds_by_app[&a.app]).collect();
        let spec = spec_for(grid, &allocs, &kinds, &cfg);
        let mut n = match net.take() {
            Some(mut old) => {
                while old.in_flight() > 0 {
                    old.step();
                    delivered += old.drain_delivered().len() as u64;
                }
                old.reconfigure(spec)?;
                old
            }
            None => Network::new(spec, cfg.clone())?,
        };

        // Run traffic inside every allocated region.
        for a in &allocs {
            let nodes: Vec<NodeId> = a.rect.iter().map(|c| grid.node(c)).collect();
            for (i, &s) in nodes.iter().enumerate() {
                injected += 1;
                let d = nodes[(i + 3) % nodes.len()];
                if s != d {
                    n.inject(Packet::request(injected, s, d, 0))?;
                } else {
                    injected -= 1;
                }
            }
        }
        for _ in 0..400 {
            n.step();
            delivered += n.drain_delivered().len() as u64;
        }
        println!(
            "    free tiles: {:>2} | active routers: {} | in flight: {}",
            alloc.free_tiles(),
            n.spec().active_routers(),
            n.in_flight()
        );
        net = Some(n);
    }

    let mut n = net.unwrap();
    while n.in_flight() > 0 {
        n.step();
        delivered += n.drain_delivered().len() as u64;
    }
    println!(
        "\ninjected {injected}, delivered {delivered} — lossless: {}",
        injected == delivered
    );
    assert_eq!(injected, delivered);
    Ok(())
}

//! Watches the deadlock-free reconfiguration protocol (Sec. II-C1) switch
//! a live subNoC from mesh to torus to cmesh and back while traffic keeps
//! flowing — no packet is ever dropped.
//!
//! ```sh
//! cargo run --release --example reconfiguration
//! ```

use adaptnoc::core::prelude::*;
use adaptnoc::sim::config::SimConfig;
use adaptnoc::sim::network::Network;
use adaptnoc::sim::prelude::{NodeId, Packet};
use adaptnoc::topology::prelude::*;

fn spec_of(kind: TopologyKind, cfg: &SimConfig) -> adaptnoc::sim::spec::NetworkSpec {
    build_chip_spec(
        Grid::paper(),
        &[RegionTopology::new(Rect::new(0, 0, 4, 4), kind)],
        cfg,
    )
    .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let cfg = SimConfig::adapt_noc();
    let mut net = Network::new(spec_of(TopologyKind::Mesh, &cfg), cfg.clone())?;
    let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();

    let timing = ReconfigTiming::default();
    println!(
        "notify latency for a 4x4 subNoC: (4+4-2)x(T_r+T_l) = {} cycles; T_s = {} cycles\n",
        timing.notify_cycles(rect),
        timing.t_s
    );

    let mut injected = 0u64;
    let mut delivered = 0u64;
    let plan = [
        (TopologyKind::Mesh, TopologyKind::Torus),
        (TopologyKind::Torus, TopologyKind::Cmesh),
        (TopologyKind::Cmesh, TopologyKind::Tree),
        (TopologyKind::Tree, TopologyKind::Mesh),
    ];

    for (from, to) in plan {
        let fast = keeps_mesh(from) && keeps_mesh(to);
        let transitional = fast.then(|| spec_of(TopologyKind::Mesh, &cfg).tables);
        let mut rc =
            RegionReconfig::start(&net, &grid, rect, spec_of(to, &cfg), transitional, timing);
        let mut stage_log = Vec::new();
        let mut last = format!("{:?}", rc.stage);
        loop {
            // Keep traffic flowing throughout the switch.
            if net.now() % 9 == 0 {
                injected += 1;
                let s = nodes[(net.now() as usize) % nodes.len()];
                let d = nodes[(net.now() as usize + 5) % nodes.len()];
                if s != d {
                    net.inject(Packet::request(injected, s, d, 0)).ok();
                } else {
                    injected -= 1;
                }
            }
            net.step();
            let done = rc.tick(&mut net, &grid)?;
            let cur = format!("{:?}", rc.stage);
            if cur != last {
                stage_log.push(format!("@{}: {}", net.now(), cur));
                last = cur;
            }
            delivered += net.drain_delivered().len() as u64;
            if done {
                break;
            }
        }
        println!(
            "{:<6} -> {:<6} [{}] in {:>4} cycles | stages: {}",
            from.name(),
            to.name(),
            if fast { "fast path " } else { "drain path" },
            rc.latency(net.now()),
            stage_log.join(", ")
        );
    }

    // Drain everything and verify losslessness.
    while net.in_flight() > 0 {
        net.step();
        delivered += net.drain_delivered().len() as u64;
    }
    println!(
        "\ninjected {injected}, delivered {delivered}, unroutable {} — lossless: {}",
        net.unroutable_events(),
        injected == delivered && net.unroutable_events() == 0
    );
    assert_eq!(injected, delivered);
    Ok(())
}

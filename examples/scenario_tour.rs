//! A tour of the scenario subsystem: parse a `.scn` script, print its
//! canonical form, compile it, and replay it twice — a calm phase, a
//! hotspot storm with MMPP bursts, a scripted link glitch, and a live
//! region reconfiguration — showing the open-system measurements
//! (offered vs accepted, latency quantiles, source-queue backlog) per
//! epoch, plus a small load sweep around the 4x4 saturation knee.
//!
//! Deterministic: every run prints byte-identical output (CI replays it
//! twice and compares).
//!
//! ```sh
//! cargo run --release --example scenario_tour
//! ```

use adaptnoc::scenario::prelude::*;

const STORM: &str = "grid 4 4; seed 7; warmup 2K; duration 12K; epoch 3K;
region B 2 2 2 2;
t=0  uniform load 0.05 poisson;
t=3K hotspot region B load 0.4 mmpp 4 0.02 0.1;
t=6K uniform load 0.05 poisson;
t=7K glitch link 1 -> 2 for 500;
t=9K reconfigure region B to cmesh;";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = parse(STORM)?;
    println!("== canonical form ==");
    print!("{sc}");
    assert_eq!(parse(&sc.to_string())?, sc, "canonical text reparses");

    let plan = compile(&sc)?;
    let out = run(&plan, &RunOptions::default())?;
    println!("\n== hotspot storm replay ==");
    println!(
        "{:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "cycle", "offered", "accepted", "avg-lat", "p50", "p99", "queue"
    );
    for e in &out.epochs {
        println!(
            "{:>6} {:>9.4} {:>9.4} {:>8.1} {:>8.1} {:>8.1} {:>7}",
            e.cycle, e.offered_rate, e.accepted_rate, e.avg_latency, e.p50, e.p99, e.source_queue
        );
    }
    println!(
        "total: offered {} delivered {} drops {} | p50 {:.1} p99 {:.1} p999 {:.1} | max queue {}",
        out.offered, out.delivered, out.drops, out.p50, out.p99, out.p999, out.max_source_queue
    );
    let again = run(&plan, &RunOptions::default())?;
    assert_eq!(out, again, "scenario replay is deterministic");

    println!("\n== load sweep (uniform poisson, 4x4) ==");
    let sweep = compile(&parse(
        "grid 4 4; seed 1; warmup 1K; duration 6K; epoch 6K;
         sweep load 0.1 to 0.7 step 0.1;
         t=0 uniform load sweep poisson;",
    )?)?;
    println!(
        "{:>5} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "load", "offered", "accepted", "p50", "p99", "queue"
    );
    for load in sweep.sweep.expect("sweep directive").points() {
        let out = run(
            &sweep,
            &RunOptions {
                load: Some(load),
                ..RunOptions::default()
            },
        )?;
        println!(
            "{load:>5.1} {:>9.4} {:>9.4} {:>8.1} {:>8.1} {:>7}",
            out.offered_rate, out.accepted_rate, out.p50, out.p99, out.max_source_queue
        );
    }
    Ok(())
}

//! # adaptnoc
//!
//! A full reproduction of **"Adapt-NoC: A Flexible Network-on-Chip Design
//! for Heterogeneous Manycore Architectures"** (Zheng, Wang, Louri,
//! HPCA 2021) as a Rust workspace:
//!
//! * [`sim`] — a cycle-level NoC simulator (VC routers, credits, virtual
//!   cut-through, live reconfiguration).
//! * [`topology`] — the four subNoC topologies (mesh/cmesh/torus/tree),
//!   baselines (flattened butterfly, shortcut), 64x64 meshes, chiplet
//!   fabrics, the customizable sparse-Hamming generator, routing and
//!   deadlock validation; see [`topologies`] for the full atlas.
//! * [`power`] — 45 nm energy/area/timing/wiring models.
//! * [`rl`] — a from-scratch DQN (12-15-15-4) and tabular Q-learning.
//! * [`core`] — the Adapt-NoC architecture: adaptable links/routers,
//!   subNoC management, deadlock-free reconfiguration, MC sharing, the
//!   seven evaluated designs.
//! * [`workloads`] — synthetic Parsec/Rodinia closed-loop applications
//!   plus the open-loop traffic engine (Poisson/MMPP arrivals, Zipf and
//!   hotspot destinations, rate shaping).
//! * [`scenario`] — the `.scn` scripting DSL and deterministic runner
//!   for time-phased open-system scenarios; see [`scenarios`] for the
//!   grammar and walkthrough.
//! * [`faults`] — fault injection and resilience: NACK/retry recovery of
//!   in-flight packets and live rerouting of subNoCs around permanent
//!   link/router failures.
//! * `bench` — the harness regenerating every figure and table.
//! * [`farm`] — the `adaptnoc-farmd` daemon and `farmctl` client: a
//!   crash-tolerant simulation service; see [`farm_service`] for the
//!   protocol, lifecycle, and shutdown semantics.
//! * [`telemetry`](sim::telemetry) — the unified metrics registry wired
//!   through all of the above; see [`observability`] for the full story.
//!
//! See `examples/` for runnable entry points and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The observability story (`docs/OBSERVABILITY.md`), included here so
/// its code blocks compile and run as doctests
/// (`cargo test --doc -p adaptnoc`).
#[doc = include_str!("../docs/OBSERVABILITY.md")]
pub mod observability {}

/// The scenario scripting story (`docs/SCENARIOS.md`), included here so
/// its code blocks compile and run as doctests
/// (`cargo test --doc -p adaptnoc`).
#[doc = include_str!("../docs/SCENARIOS.md")]
pub mod scenarios {}

/// The simulation-farm story (`docs/FARM.md`), included here so its
/// code blocks compile and run as doctests
/// (`cargo test --doc -p adaptnoc`).
#[doc = include_str!("../docs/FARM.md")]
pub mod farm_service {}

/// The topology atlas (`docs/TOPOLOGIES.md`) — every design point from
/// the paper's 8x8 subNoCs to 64x64 meshes, chiplet fabrics and the
/// customizable sparse-Hamming generator — included here so its code
/// blocks compile and run as doctests (`cargo test --doc -p adaptnoc`).
#[doc = include_str!("../docs/TOPOLOGIES.md")]
pub mod topologies {}

pub use adaptnoc_bench as bench;
pub use adaptnoc_core as core;
pub use adaptnoc_farm as farm;
pub use adaptnoc_faults as faults;
pub use adaptnoc_power as power;
pub use adaptnoc_rl as rl;
pub use adaptnoc_scenario as scenario;
pub use adaptnoc_sim as sim;
pub use adaptnoc_topology as topology;
pub use adaptnoc_workloads as workloads;

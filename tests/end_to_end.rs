//! Workspace-level integration tests: full designs end to end, RL training
//! to deployment, and live reconfiguration under real workloads.

use adaptnoc::bench::prelude::*;
use adaptnoc::core::prelude::*;
use adaptnoc::power::prelude::*;
use adaptnoc::rl::prelude::*;
use adaptnoc::sim::prelude::*;
use adaptnoc::topology::prelude::*;
use adaptnoc::workloads::prelude::*;

fn quick_rc() -> RunConfig {
    RunConfig {
        epoch_cycles: 5_000,
        epochs: 2,
        warmup_epochs: 1,
        ..Default::default()
    }
}

#[test]
fn every_design_survives_the_mixed_workload() {
    let layout = ChipLayout::paper_mixed();
    let profiles = vec![
        by_name("CA").unwrap(),
        by_name("KM").unwrap(),
        by_name("BP").unwrap(),
    ];
    for kind in DesignKind::ALL {
        let policies = if kind.is_adaptive() {
            fixed_policies(&[TopologyKind::Cmesh, TopologyKind::Tree, TopologyKind::Torus])
        } else {
            vec![]
        };
        let r = run_design(kind, &layout, &profiles, policies, &quick_rc()).unwrap();
        assert!(r.network_latency > 0.0, "{kind}: no traffic measured");
        assert!(r.energy.total_j() > 0.0, "{kind}: no energy");
        assert_eq!(r.apps.len(), 3);
        for a in &r.apps {
            assert!(a.delivered > 0, "{kind}/{}: nothing delivered", a.name);
        }
    }
}

#[test]
fn cmesh_cuts_cpu_hops_like_the_paper() {
    // The paper: Adapt-NoC achieves 41% hop-count reduction for CPU apps
    // vs the baseline (Fig. 8), driven by concentration.
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
    let profile = by_name("BS").unwrap();
    let base = run_design(
        DesignKind::Baseline,
        &layout,
        std::slice::from_ref(&profile),
        vec![],
        &quick_rc(),
    )
    .unwrap();
    let adapt = run_design(
        DesignKind::AdaptNocNoRl,
        &layout,
        std::slice::from_ref(&profile),
        fixed_policies(&[TopologyKind::Cmesh]),
        &quick_rc(),
    )
    .unwrap();
    assert!(
        adapt.hops < base.hops * 0.7,
        "cmesh hops {} vs baseline {}",
        adapt.hops,
        base.hops
    );
    assert!(
        adapt.packet_latency() < base.packet_latency(),
        "cmesh latency {} vs baseline {}",
        adapt.packet_latency(),
        base.packet_latency()
    );
}

#[test]
fn torus_beats_adapt_mesh_for_gpu_traffic() {
    let layout = ChipLayout::single(Rect::new(0, 0, 8, 4), true);
    let profile = by_name("BP").unwrap();
    let run = |kind: TopologyKind| {
        run_design(
            DesignKind::AdaptNocNoRl,
            &layout,
            std::slice::from_ref(&profile),
            fixed_policies(&[kind]),
            &quick_rc(),
        )
        .unwrap()
    };
    let mesh = run(TopologyKind::Mesh);
    let torus = run(TopologyKind::Torus);
    assert!(
        torus.network_latency < mesh.network_latency,
        "torus {} vs mesh {}",
        torus.network_latency,
        mesh.network_latency
    );
}

#[test]
fn rl_pipeline_trains_and_deploys() {
    let policy = train_dqn(
        &[
            TrainScenario {
                rect: Rect::new(0, 0, 4, 4),
                profile: by_name("BS").unwrap(),
            },
            TrainScenario {
                rect: Rect::new(0, 0, 4, 4),
                profile: by_name("KM").unwrap(),
            },
        ],
        &TrainConfig::tiny(),
        None,
    )
    .unwrap();
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
    let profile = by_name("BS").unwrap();
    let r = run_design(
        DesignKind::AdaptNoc,
        &layout,
        std::slice::from_ref(&profile),
        vec![TopologyPolicy::Trained(policy)],
        &quick_rc(),
    )
    .unwrap();
    let sel = r.selections.unwrap()[0];
    assert!((sel.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn qtable_policy_also_controls_the_noc() {
    // The tabular ablation: Q-learning with discretized state drives the
    // same controller interface.
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), false);
    let profile = by_name("CA").unwrap();
    let r = run_design(
        DesignKind::AdaptNoc,
        &layout,
        std::slice::from_ref(&profile),
        vec![TopologyPolicy::QTable(QTableAgent::new(4, 4, 9))],
        &quick_rc(),
    )
    .unwrap();
    assert!(r.network_latency > 0.0);
}

#[test]
fn adaptive_designs_never_lose_packets_across_reconfigs() {
    // Run a learning policy (reconfigures often) and check global packet
    // conservation through every topology switch.
    let layout = ChipLayout::single(Rect::new(0, 0, 4, 4), true);
    let profile = by_name("GA").unwrap();
    let agent = DqnAgent::new(
        DqnConfig {
            epsilon: 0.9,
            ..Default::default()
        },
        3,
    );
    let mut design = Design::build(
        DesignKind::AdaptNoc,
        layout.clone(),
        &[],
        vec![TopologyPolicy::Learning(agent)],
        3,
    )
    .unwrap();
    let mut wl = Workload::new(&layout, std::slice::from_ref(&profile), 3);
    let model = EnergyModel::new(design.net.config());
    for cycle in 1..=30_000u64 {
        wl.tick(&mut design.net);
        design.net.step();
        design.tick().unwrap();
        if cycle % 3_000 == 0 {
            let (report, telemetry) = wl.epoch_telemetry(&mut design.net, &layout, &model);
            design.on_epoch(&report, &telemetry).unwrap();
        }
    }
    let ctl = design.controller().unwrap();
    assert!(
        ctl.regions[0].reconfig_count >= 2,
        "exploration should reconfigure, got {}",
        ctl.regions[0].reconfig_count
    );
    assert_eq!(design.net.unroutable_events(), 0);
    // Drain: every in-flight packet still completes.
    let mut guard = 0;
    while design.net.in_flight() > 0 && guard < 200_000 {
        wl.tick(&mut design.net);
        design.net.step();
        design.tick().unwrap();
        guard += 1;
    }
    assert_eq!(design.net.in_flight(), 0, "network must drain");
}

#[test]
fn mc_sharing_increases_memory_throughput() {
    // The Sec. II-C2 experiment: a memory-hungry app borrowing a
    // neighbour's MC completes more round trips per epoch.
    let layout = ChipLayout::new(
        Grid::paper(),
        &[
            (Rect::new(0, 0, 4, 8), true),
            (Rect::new(4, 0, 4, 8), false),
        ],
    );
    let profiles = vec![by_name("KM").unwrap(), by_name("BS").unwrap()];
    let replies = |share: bool| -> u64 {
        let cfg = DesignKind::Baseline.sim_config();
        let spec = mesh_chip(layout.grid, &cfg).unwrap();
        let mut spec = spec;
        if share {
            add_mc_bridge(
                &mut spec,
                &layout.grid,
                layout.regions[0].rect,
                layout.regions[1].rect,
                layout.regions[1].mc,
            )
            .unwrap();
        }
        let mut net = Network::new(spec, cfg).unwrap();
        let mut wl = Workload::new(&layout, &profiles, 5);
        if share {
            wl.add_shared_mc(0, layout.regions[1].mc);
        }
        for _ in 0..20_000 {
            wl.tick(&mut net);
            net.step();
        }
        wl.apps[0].epoch.replies
    };
    let without = replies(false);
    let with = replies(true);
    assert!(
        with > without,
        "shared MC should raise throughput: {without} -> {with}"
    );
}

#[test]
fn area_and_wiring_stay_within_paper_budgets() {
    let a = area_table();
    assert!((a.baseline_mm2 - 17.27).abs() < 0.05);
    assert!(a.saving_fraction > 0.0);
    let (budget, rows) = wiring_table().unwrap();
    assert!(rows.iter().all(|r| r.fits_budget));
    assert_eq!(budget.total(), 9);
}

#[test]
fn adaptable_link_inventory_holds_for_every_chip_state() {
    // Every assignment the controller can produce fits the one-adaptable-
    // link-per-row/column wire inventory.
    let grid = Grid::paper();
    let cfg = DesignKind::AdaptNoc.sim_config();
    for k1 in TopologyKind::ACTIONS {
        for k2 in TopologyKind::ACTIONS {
            let spec = build_chip_spec(
                grid,
                &[
                    RegionTopology::new(Rect::new(0, 0, 4, 8), k1),
                    RegionTopology::new(Rect::new(4, 0, 4, 8), k2),
                ],
                &cfg,
            )
            .unwrap();
            check_adaptable_links(&grid, &spec).unwrap_or_else(|e| panic!("{k1}+{k2}: {e}"));
        }
    }
}

# Convenience targets mirroring CI. The workspace has zero external
# dependencies, so everything runs offline.

CARGO ?= cargo

.PHONY: all build test check fmt clippy ci docs telemetry faults scenarios farm guards topologies figures perf pgo clean

all: build

build:
	$(CARGO) build --workspace --all-targets --offline

test:
	$(CARGO) test --workspace --offline

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

check: fmt clippy

# Everything CI runs, in CI's order.
ci: check build test docs telemetry guards faults scenarios farm topologies

# Rustdoc must build warning-clean (missing_docs is deny-level on the
# public crates), and the code blocks of docs/OBSERVABILITY.md,
# docs/SCENARIOS.md, docs/FARM.md and docs/TOPOLOGIES.md run as
# doctests through the root crate's doc-include modules.
docs:
	RUSTDOCFLAGS='-D warnings' $(CARGO) doc --no-deps --workspace --offline
	$(CARGO) test --doc -p adaptnoc --offline

# Telemetry subsystem: crate + wiring tests, the observation-only
# property suite, and the determinism check on the snapshot tour.
telemetry:
	$(CARGO) test -p adaptnoc-telemetry --offline
	$(CARGO) test -p adaptnoc-sim --test telemetry_equivalence --offline
	$(CARGO) run --release --offline --example telemetry_tour > /tmp/telemetry_tour_a.txt
	$(CARGO) run --release --offline --example telemetry_tour > /tmp/telemetry_tour_b.txt
	cmp /tmp/telemetry_tour_a.txt /tmp/telemetry_tour_b.txt

# Fault-injection subsystem: crate tests, the sweep campaign, and the
# determinism check on the end-to-end example.
faults:
	$(CARGO) test -p adaptnoc-faults --offline
	$(CARGO) run --release --offline --example fault_recovery > /tmp/fault_recovery_a.txt
	$(CARGO) run --release --offline --example fault_recovery > /tmp/fault_recovery_b.txt
	cmp /tmp/fault_recovery_a.txt /tmp/fault_recovery_b.txt
	$(CARGO) run --release --offline -p adaptnoc-bench --bin gen-figures -- --quick --only faults

# Scenario subsystem: DSL/runner/corpus tests, the open-loop engine,
# campaign equivalence, the determinism check on the tour example, and
# the latency-throughput campaign itself.
scenarios:
	$(CARGO) test -p adaptnoc-scenario --offline
	$(CARGO) test -p adaptnoc-workloads --offline
	$(CARGO) test -p adaptnoc-bench --test scenario_equivalence --offline
	$(CARGO) run --release --offline --example scenario_tour > /tmp/scenario_tour_a.txt
	$(CARGO) run --release --offline --example scenario_tour > /tmp/scenario_tour_b.txt
	cmp /tmp/scenario_tour_a.txt /tmp/scenario_tour_b.txt
	$(CARGO) run --release --offline -p adaptnoc-bench --bin gen-figures -- --only scenarios --threads 0

# Topology atlas + scaling: the generated-topology property suites
# (sparse Hamming / chiplet fabrics: connected, deadlock-free, within
# the wiring budget), docs/TOPOLOGIES.md's doctests, the deterministic
# atlas example, and the 64x64 scaling campaign pinned byte-identical
# across serial and region-parallel stepping (mirrors CI scaling-smoke).
topologies:
	$(CARGO) test -p adaptnoc-topology --offline
	$(CARGO) test --doc -p adaptnoc --offline topologies
	$(CARGO) run --release --offline --example topology_atlas > /tmp/topology_atlas_a.txt
	$(CARGO) run --release --offline --example topology_atlas > /tmp/topology_atlas_b.txt
	cmp /tmp/topology_atlas_a.txt /tmp/topology_atlas_b.txt
	rm -f results/figures.json
	$(CARGO) run --release --offline -p adaptnoc-bench --bin gen-figures -- --quick --only scaling --threads 1
	cp results/figures.json /tmp/scaling-serial.json
	rm results/figures.json
	$(CARGO) run --release --offline -p adaptnoc-bench --bin gen-figures -- --quick --only scaling --threads 4
	cmp /tmp/scaling-serial.json results/figures.json

# Farm daemon: crate + supervision tests, the crash/resume integration
# suite (SIGKILL mid-job, SIGTERM under load, farmctl lifecycle), and
# the end-to-end smoke script — boot farmd, submit the corpus, cancel
# one job mid-flight, drain, and diff the daemon-run scenarios campaign
# against the direct one.
farm:
	$(CARGO) test -p adaptnoc-farm --offline
	bash scripts/farm_smoke.sh

# Re-run the whole suite with every-cycle invariant checking (credit and
# flit conservation, fault/power isolation); any breach panics on the
# cycle it happens. Mirrors CI's guards-strict job.
guards:
	ADAPTNOC_GUARDS=strict $(CARGO) test --workspace --offline
	$(CARGO) run --release --offline --example health_guards > /tmp/health_guards_a.txt
	$(CARGO) run --release --offline --example health_guards > /tmp/health_guards_b.txt
	cmp /tmp/health_guards_a.txt /tmp/health_guards_b.txt

figures:
	$(CARGO) run --release --offline -p adaptnoc-bench --bin gen-figures -- --threads 0

# Simulator throughput benchmark (mirrors CI's perf-smoke job); writes a
# BENCH_<date>.json-style record. --threads 0 auto-detects host cores.
perf:
	$(CARGO) run --release --offline -p adaptnoc-bench --bin speed -- --threads 0 --json BENCH_$$(date +%F).json

# Profile-guided rebuild: instrument the bench binaries, train on the
# loaded-workload benchmark plus the scenarios campaign (the same traffic
# the simulator spends its life on), merge the profiles, and rebuild with
# the profile applied. The merge needs an `llvm-profdata` whose LLVM
# major matches the toolchain's — an older system copy (e.g. Debian's
# LLVM 14 against a rustc on LLVM 22) cannot read the raw profiles.
# scripts/find_llvm_profdata.sh resolves one (sysroot first, then PATH,
# then a one-shot `rustup component add llvm-tools-preview`) and fails
# with guidance before the expensive instrumented build otherwise.
PGO_DIR := target/pgo

pgo:
	rm -rf $(PGO_DIR)
	mkdir -p $(PGO_DIR)
	bash scripts/find_llvm_profdata.sh > $(PGO_DIR)/profdata.path
	RUSTFLAGS="-Cprofile-generate=$(abspath $(PGO_DIR))" $(CARGO) build --release --offline -p adaptnoc-bench --bins
	./target/release/speed --cycles 100000 --threads 1
	./target/release/speed --cycles 20000 --scenario scenarios/hotspot_storm.scn
	./target/release/speed --cycles 20000 --scenario scenarios/reconfigure_region.scn
	"$$(cat $(PGO_DIR)/profdata.path)" merge -output $(PGO_DIR)/merged.profdata $(PGO_DIR)
	RUSTFLAGS="-Cprofile-use=$(abspath $(PGO_DIR))/merged.profdata" $(CARGO) build --release --offline -p adaptnoc-bench --bins
	@echo "PGO-optimized binaries in target/release (trained on the scenarios campaign)"

clean:
	$(CARGO) clean

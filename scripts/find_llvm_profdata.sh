#!/usr/bin/env bash
# Locates an `llvm-profdata` whose LLVM major version matches the rustc
# toolchain's, for `make pgo`. Prints the chosen binary's path on stdout;
# everything else goes to stderr.
#
# Profile data written by `-Cprofile-generate` uses the toolchain LLVM's
# raw-profile format, which an older system `llvm-profdata` (e.g. Debian's
# LLVM 14 against a rustc built on LLVM 22) cannot read — the merge fails
# with "unsupported instrumentation profile format version" or silently
# mis-merges. So candidates are accepted only on a major-version match:
#
#   1. the rustup sysroot copy (from `rustup component add
#      llvm-tools-preview`) — always version-matched when present;
#   2. $LLVM_PROFDATA, if the caller pinned one;
#   3. `llvm-profdata` / `llvm-profdata-<major>` on PATH.
#
# If none match, a one-shot `rustup component add llvm-tools-preview` is
# attempted (needs network access; a no-op if already installed), then the
# sysroot is re-checked. Exits non-zero with guidance if no usable binary
# is found.
set -u

want=$(rustc -vV | sed -n 's/^LLVM version: \([0-9][0-9]*\).*/\1/p')
if [ -z "$want" ]; then
    echo "error: could not determine rustc's LLVM version (rustc -vV)" >&2
    exit 1
fi

major_of() {
    # Older builds only accept --version after a subcommand, newer ones
    # accept it bare; try both.
    { "$1" merge --version 2>/dev/null || "$1" --version 2>/dev/null; } |
        sed -n 's/.*LLVM version \([0-9][0-9]*\).*/\1/p' | head -n1
}

sysroot_profdata() {
    ls "$(rustc --print target-libdir)/../bin/llvm-profdata" 2>/dev/null
}

try_candidates() {
    for cand in "$(sysroot_profdata)" "${LLVM_PROFDATA:-}" \
        "$(command -v llvm-profdata 2>/dev/null)" \
        "$(command -v "llvm-profdata-$want" 2>/dev/null)"; do
        [ -n "$cand" ] && [ -x "$cand" ] || continue
        have=$(major_of "$cand")
        if [ "$have" = "$want" ]; then
            echo "$cand"
            return 0
        fi
        [ -n "$have" ] &&
            echo "note: skipping $cand (LLVM $have, toolchain needs $want)" >&2
    done
    return 1
}

if pick=$(try_candidates); then
    echo "$pick"
    exit 0
fi

echo "note: no matching llvm-profdata; trying 'rustup component add llvm-tools-preview'" >&2
if command -v rustup >/dev/null 2>&1 &&
    rustup component add llvm-tools-preview >&2; then
    if pick=$(try_candidates); then
        echo "$pick"
        exit 0
    fi
fi

cat >&2 <<EOF
error: no llvm-profdata matching the toolchain's LLVM $want was found.

  The system copy (if any) is built against a different LLVM major and
  cannot read this toolchain's raw profiles. Fix one of:
    - run 'rustup component add llvm-tools-preview' on a networked host
      (installs a version-matched copy into the rustc sysroot), or
    - install LLVM $want tools and point LLVM_PROFDATA at its llvm-profdata.
EOF
exit 1

#!/usr/bin/env bash
# Farm smoke test (mirrors CI's farm job; also `make farm`):
#
#   1. boot adaptnoc-farmd on a loopback port with a scratch data dir;
#   2. drive the whole client lifecycle with farmctl — ping, submit the
#      golden corpus as named campaigns, cancel an endless job
#      mid-flight, fetch results;
#   3. prove the daemon path changes nothing: `gen-figures --only
#      scenarios --submit ADDR` must produce results/figures.json
#      byte-identical to the direct in-process run;
#   4. drain (stop admission, settle), then SIGTERM the daemon and
#      require a clean exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}
$CARGO build --release --offline -p adaptnoc-farm --bins
$CARGO build --release --offline -p adaptnoc-bench --bin gen-figures

FARMD=target/release/adaptnoc-farmd
FARMCTL=target/release/farmctl

DATA=$(mktemp -d "${TMPDIR:-/tmp}/adaptnoc-farm-smoke.XXXXXX")
FARMD_PID=
# The diff step rewrites the checked-in results/; put them back however
# the script exits.
for f in figures.json REPORT.md; do
  [ -f "results/$f" ] && cp "results/$f" "$DATA/keep-$f"
done
cleanup() {
  if [ -n "$FARMD_PID" ] && kill -0 "$FARMD_PID" 2>/dev/null; then
    kill -9 "$FARMD_PID" 2>/dev/null || true
  fi
  for f in figures.json REPORT.md; do
    if [ -f "$DATA/keep-$f" ]; then
      mv "$DATA/keep-$f" "results/$f"
    fi
  done
  rm -rf "$DATA"
}
trap cleanup EXIT

"$FARMD" --listen 127.0.0.1:0 --data-dir "$DATA" --workers 2 &
FARMD_PID=$!

for _ in $(seq 1 400); do
  [ -s "$DATA/endpoint" ] && break
  sleep 0.05
done
ADDR=$(cat "$DATA/endpoint")
echo "== farmd is up at $ADDR"
"$FARMCTL" --addr "$ADDR" ping

echo "== submitting the golden corpus as named campaigns"
IDS=()
for c in diurnal_ramp fault_recovery hotspot_storm reconfigure_region; do
  id=$("$FARMCTL" --addr "$ADDR" submit --campaign "$c")
  echo "   $c -> job $id"
  IDS+=("$id")
done

echo "== cancelling an endless job mid-flight"
printf 'grid 4 4; seed 5; warmup 1K; duration 500M; epoch 1M;\nt=0 uniform load 0.05 poisson;\n' \
  > "$DATA/endless.scn"
VICTIM=$("$FARMCTL" --addr "$ADDR" submit "$DATA/endless.scn" --name endless)
sleep 2
"$FARMCTL" --addr "$ADDR" cancel "$VICTIM"

for id in "${IDS[@]}"; do
  "$FARMCTL" --addr "$ADDR" wait "$id" >/dev/null \
    || { echo "job $id did not complete"; exit 1; }
  "$FARMCTL" --addr "$ADDR" result "$id" >/dev/null
done
"$FARMCTL" --addr "$ADDR" status "$VICTIM" | grep -q cancelled \
  || { echo "job $VICTIM was not cancelled"; exit 1; }
"$FARMCTL" --addr "$ADDR" status

echo "== daemon-run scenarios campaign must match the direct run byte-for-byte"
rm -f results/figures.json
$CARGO run --release --offline -p adaptnoc-bench --bin gen-figures -- --only scenarios --threads 1
cp results/figures.json "$DATA/direct-figures.json"
rm results/figures.json
$CARGO run --release --offline -p adaptnoc-bench --bin gen-figures -- --only scenarios --submit "$ADDR"
cmp "$DATA/direct-figures.json" results/figures.json
rm results/figures.json

echo "== draining (stop admission, wait for every job to settle)"
"$FARMCTL" --addr "$ADDR" drain

echo "== SIGTERM must exit 0"
kill "$FARMD_PID"
if wait "$FARMD_PID"; then
  FARMD_PID=
else
  echo "farmd did not exit cleanly on SIGTERM"
  exit 1
fi

echo "farm smoke: OK"
